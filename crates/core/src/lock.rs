//! Distributed lock operations (paper §3.2).
//!
//! Two algorithms, selectable per call or via the configured default:
//!
//! * **Hybrid** ([`Armci::lock_hybrid`]) — the original ARMCI scheme:
//!   node-local requests use the ticket lock directly through shared
//!   memory; remote requests ask the server to take a ticket on their
//!   behalf and wait for a grant message; *every* release (local or
//!   remote) messages the server, which increments `counter` and grants
//!   the head waiter. Handoff to a remote waiter therefore costs two
//!   messages (§3.2.1, Figures 3–4).
//!
//! * **MCS software queuing lock** ([`Armci::lock_mcs`]) — the paper's
//!   contribution (Figure 5): a linked list of waiting processes built
//!   with atomic `swap`/`compare&swap` on global pointers. Handoff writes
//!   the next waiter's `locked` flag directly: one message if remote,
//!   zero if node-local, and the server is uninvolved when requester,
//!   lock and predecessor share a node. The cost is that an uncontended
//!   release must round-trip a `compare&swap` where the hybrid release
//!   was a fire-and-forget message (§3.2.2 last paragraph — visible in
//!   Figure 10).
//!
//! A third variant ([`Armci::lock_mcs_pair`]) runs the identical MCS
//! algorithm over the paper's literal *paired-long* atomic operations
//! instead of packed single-word pointers, for the encoding ablation.

use std::sync::atomic::Ordering;
use std::time::Instant;

use armci_proto::{
    Backoff, HybridAcquire, HybridAction, HybridEvent, McsAcquire, McsAcquireAction, McsAcquireEvent, McsReclaim,
    McsRelease, McsReleaseAction, McsReleaseEvent, ReclaimAction, ReclaimEvent,
};
use armci_transport::{ProcId, SegId};

use crate::armci::{unwrap_op, Armci, LockId};
use crate::config::LockAlgo;
use crate::errors::ArmciError;
use crate::gptr::{GlobalAddr, PackedPtr};
use crate::layout;
use crate::msg::{Req, RmwOp, TAG_LOCK_GRANT};
use crate::server::decode_grant;

impl Armci {
    fn check_lock_id(&self, id: LockId) {
        assert!(id.owner.idx() < self.nprocs(), "lock owner {} out of range", id.owner);
        assert!(
            id.idx < self.locks_per_proc(),
            "lock index {} exceeds locks_per_proc {}",
            id.idx,
            self.locks_per_proc()
        );
    }

    /// Acquire `id` with the configured default algorithm.
    ///
    /// ```
    /// use armci_core::{run_cluster, ArmciCfg, GlobalAddr, LockId};
    /// use armci_transport::{LatencyModel, ProcId};
    ///
    /// let out = run_cluster(ArmciCfg::flat(3, LatencyModel::zero()), |a| {
    ///     let seg = a.malloc(8);
    ///     let lock = LockId { owner: ProcId(0), idx: 0 };
    ///     let ctr = GlobalAddr::new(ProcId(0), seg, 0);
    ///     a.barrier();
    ///     for _ in 0..5 {
    ///         a.lock(lock);
    ///         // Deliberately non-atomic increment under the lock.
    ///         let v = a.get_u64(ctr);
    ///         a.put_u64(ctr, v + 1);
    ///         a.fence(ProcId(0));
    ///         a.unlock(lock);
    ///     }
    ///     a.barrier();
    ///     a.get_u64(ctr)
    /// });
    /// assert_eq!(out, vec![15, 15, 15]);
    /// ```
    pub fn lock(&mut self, id: LockId) {
        unwrap_op(self.try_lock(id));
    }

    /// Fallible [`Armci::lock`]: same algorithm dispatch, but a dead lock
    /// host or an expired `op_timeout` surfaces as an [`ArmciError`]
    /// instead of spinning or blocking forever.
    pub fn try_lock(&mut self, id: LockId) -> Result<(), ArmciError> {
        match self.lock_algo() {
            LockAlgo::Hybrid => self.try_lock_hybrid(id),
            LockAlgo::ServerOnly => self.try_lock_server_only(id),
            LockAlgo::TicketPoll => self.try_lock_ticket_poll(id),
            LockAlgo::Mcs | LockAlgo::McsSwap => self.try_lock_mcs(id),
            LockAlgo::McsPair => self.try_lock_mcs_pair(id),
        }
    }

    /// Release `id` with the configured default algorithm.
    pub fn unlock(&mut self, id: LockId) {
        match self.lock_algo() {
            LockAlgo::Hybrid | LockAlgo::ServerOnly => self.unlock_hybrid(id),
            LockAlgo::TicketPoll => self.unlock_ticket_poll(id),
            LockAlgo::Mcs => self.unlock_mcs(id),
            LockAlgo::McsPair => self.unlock_mcs_pair(id),
            LockAlgo::McsSwap => self.unlock_mcs_swap(id),
        }
    }

    // ------------------------------------------------------------------
    // Hybrid ticket / server-queue lock (baseline, §3.2.1)
    // ------------------------------------------------------------------

    /// Acquire with the original hybrid algorithm.
    pub fn lock_hybrid(&mut self, id: LockId) {
        unwrap_op(self.try_lock_hybrid(id));
    }

    /// Fallible [`Armci::lock_hybrid`]. The requester-side plan comes from
    /// the sans-IO [`HybridAcquire`] engine; this loop performs the word
    /// operations and message exchanges it asks for.
    pub fn try_lock_hybrid(&mut self, id: LockId) -> Result<(), ArmciError> {
        self.check_lock_id(id);
        let mut eng = HybridAcquire::new(self.is_local(id.owner));
        let mut acts = Vec::new();
        eng.poll(HybridEvent::Start, &mut acts);
        let mut i = 0;
        while i < acts.len() {
            match acts[i] {
                HybridAction::FetchAddTicket => {
                    // Figure 3a/b: fetch-and-increment the ticket directly
                    // through shared memory.
                    let sync = self.registry.lookup(id.owner, SegId(0));
                    let ticket = sync.fetch_add_u64(layout::hybrid_ticket(id.idx), 1);
                    eng.poll(HybridEvent::Ticket(ticket), &mut acts);
                }
                HybridAction::AwaitCounter { ticket } => {
                    let sync = self.registry.lookup(id.owner, SegId(0));
                    let deadline = self.op_deadline();
                    self.wait_local_cond("lock", deadline, move || {
                        sync.atomic_u64(layout::hybrid_counter(id.idx)).load(Ordering::Acquire) == ticket
                    })?;
                    eng.poll(HybridEvent::CounterReached, &mut acts);
                }
                HybridAction::SendLockReq => {
                    // Figure 3c/d: ask the serving agent to take a ticket
                    // on our behalf and queue us until it comes up.
                    let agent = self.sync_agent(self.topology().node_of(id.owner));
                    self.send_req_to(agent, &Req::LockReq { owner: id.owner, idx: id.idx });
                }
                HybridAction::AwaitGrant => {
                    let agent = self.sync_agent(self.topology().node_of(id.owner));
                    let deadline = self.op_deadline();
                    let m = self.recv_wait("lock", deadline, |m| {
                        m.tag == TAG_LOCK_GRANT && m.src == agent && decode_grant(&m.body) == (id.owner, id.idx)
                    })?;
                    debug_assert_eq!(decode_grant(&m.body), (id.owner, id.idx));
                    eng.poll(HybridEvent::Granted, &mut acts);
                }
                HybridAction::Acquired => {}
            }
            i += 1;
        }
        debug_assert!(eng.is_acquired());
        Ok(())
    }

    /// Acquire through the server even when the lock is node-local — the
    /// pure server-based queue algorithm (no ticket fast path).
    pub fn lock_server_only(&mut self, id: LockId) {
        unwrap_op(self.try_lock_server_only(id));
    }

    /// Fallible [`Armci::lock_server_only`].
    pub fn try_lock_server_only(&mut self, id: LockId) -> Result<(), ArmciError> {
        self.check_lock_id(id);
        let agent = self.sync_agent(self.topology().node_of(id.owner));
        self.send_req_to(agent, &Req::LockReq { owner: id.owner, idx: id.idx });
        let deadline = self.op_deadline();
        let m = self.recv_wait("lock", deadline, |m| {
            m.tag == TAG_LOCK_GRANT && m.src == agent && decode_grant(&m.body) == (id.owner, id.idx)
        })?;
        debug_assert_eq!(decode_grant(&m.body), (id.owner, id.idx));
        Ok(())
    }

    /// Release with the original hybrid algorithm. Always messages the
    /// server (Figure 4), fire-and-forget — the releaser does not wait.
    pub fn unlock_hybrid(&mut self, id: LockId) {
        self.check_lock_id(id);
        let agent = self.sync_agent(self.topology().node_of(id.owner));
        self.send_req_to(agent, &Req::UnlockReq { owner: id.owner, idx: id.idx });
    }

    // ------------------------------------------------------------------
    // Remote-polling ticket lock (the strawman of §3.2.1)
    // ------------------------------------------------------------------

    /// Acquire with a plain ticket lock, polling the `counter` word over
    /// the network when remote — the approach §3.2.1 rules out
    /// ("ticket-based locks require polling on a variable, they are not
    /// well suited for remote locks"). Each remote poll is a full
    /// server round-trip; exponential backoff caps the traffic but adds
    /// handoff latency. Uses the same slot words as the hybrid lock, but
    /// the two algorithms must not be mixed on one lock (the hybrid's
    /// server queue would miss these direct releases).
    pub fn lock_ticket_poll(&mut self, id: LockId) {
        unwrap_op(self.try_lock_ticket_poll(id));
    }

    /// Fallible [`Armci::lock_ticket_poll`]: the remote poll loop checks
    /// the operation deadline between backoff sleeps, so a vanished lock
    /// host cannot keep the requester polling forever.
    pub fn try_lock_ticket_poll(&mut self, id: LockId) -> Result<(), ArmciError> {
        self.check_lock_id(id);
        let ticket_addr = GlobalAddr::new(id.owner, SegId(0), layout::hybrid_ticket(id.idx));
        let counter_addr = GlobalAddr::new(id.owner, SegId(0), layout::hybrid_counter(id.idx));
        if self.is_local(id.owner) {
            let sync = self.registry.lookup(id.owner, SegId(0));
            let ticket = sync.fetch_add_u64(layout::hybrid_ticket(id.idx), 1);
            let deadline = self.op_deadline();
            return self.wait_local_cond("lock", deadline, move || {
                sync.atomic_u64(layout::hybrid_counter(id.idx)).load(Ordering::Acquire) == ticket
            });
        }
        let ticket = self.try_rmw(ticket_addr, RmwOp::FetchAddU64(1))?[0];
        // Remote poll loop with capped exponential backoff (the shared
        // `armci-proto` policy; the simulator uses the same doubling).
        let deadline = self.op_deadline();
        let mut backoff = Backoff::new(1, 256);
        loop {
            let counter = self.try_rmw(counter_addr, RmwOp::FetchAddU64(0))?[0];
            if counter == ticket {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(ArmciError::Timeout { op: "lock" });
            }
            std::thread::sleep(std::time::Duration::from_micros(backoff.next_delay()));
        }
    }

    /// Release the remote-polling ticket lock: a direct atomic increment
    /// of `counter` (one round-trip when remote; the server queue is
    /// never involved).
    pub fn unlock_ticket_poll(&mut self, id: LockId) {
        self.check_lock_id(id);
        let counter_addr = GlobalAddr::new(id.owner, SegId(0), layout::hybrid_counter(id.idx));
        if self.is_local(id.owner) {
            self.registry.lookup(id.owner, SegId(0)).fetch_add_u64(layout::hybrid_counter(id.idx), 1);
        } else {
            self.fetch_add_u64(counter_addr, 1);
        }
    }

    // ------------------------------------------------------------------
    // MCS software queuing lock (the paper's contribution, §3.2.2)
    // ------------------------------------------------------------------

    /// This process's MCS node structure, identified by the global address
    /// of its `next` field; `locked` sits 8 bytes above.
    fn my_mcs_node(&self) -> GlobalAddr {
        GlobalAddr::new(self.me(), SegId(0), layout::MCS_NEXT)
    }

    fn mcs_lock_var(&self, id: LockId) -> GlobalAddr {
        GlobalAddr::new(id.owner, SegId(0), layout::mcs_lock(id.idx))
    }

    fn mcs_lease_holder_addr(&self, id: LockId) -> GlobalAddr {
        GlobalAddr::new(id.owner, SegId(0), layout::mcs_lease_holder(id.idx))
    }

    fn mcs_lease_epoch_addr(&self, id: LockId) -> GlobalAddr {
        GlobalAddr::new(id.owner, SegId(0), layout::mcs_lease_epoch(id.idx))
    }

    /// Record (or clear) the lease on an MCS lock slot. `holder` is
    /// `rank + 1`, or `0` for "free". Only maintained when session
    /// recovery is on — the plain fail-stop configurations never pay the
    /// extra put on the lock-handoff path.
    fn mcs_lease_set(&mut self, id: LockId, holder: u64) -> Result<(), ArmciError> {
        if !self.recovery {
            return Ok(());
        }
        self.try_put(self.mcs_lease_holder_addr(id), &holder.to_le_bytes())
    }

    /// Snapshot the lock's reclamation epoch at acquire time. Release
    /// paths validate against this snapshot before touching the queue
    /// words (lease-validated one-sided handoff): if a survivor's
    /// reclamation advanced the epoch while we held the lock — it
    /// believed our node dead — the queue was reset and our release
    /// must not be applied to it.
    fn mcs_lease_epoch_snapshot(&mut self, id: LockId) -> Result<(), ArmciError> {
        if self.recovery {
            self.mcs_lease_epoch_seen = self.try_rmw(self.mcs_lease_epoch_addr(id), RmwOp::FetchAddU64(0))?[0];
        }
        Ok(())
    }

    /// Has the lock been reclaimed since our acquire-time epoch snapshot?
    /// An unreadable epoch word (lock host unreachable) counts as *not*
    /// stale: the normal release path will surface the same fault.
    fn mcs_lease_stale(&mut self, id: LockId) -> bool {
        if !self.recovery {
            return false;
        }
        match self.try_rmw(self.mcs_lease_epoch_addr(id), RmwOp::FetchAddU64(0)) {
            Ok(v) => v[0] != self.mcs_lease_epoch_seen,
            Err(_) => false,
        }
    }

    /// Acquire with the software queuing lock (Figure 5, `request`).
    pub fn lock_mcs(&mut self, id: LockId) {
        unwrap_op(self.try_lock_mcs(id));
    }

    /// Fallible [`Armci::lock_mcs`]: the `swap` round-trip and the poll on
    /// our own `locked` flag both observe the operation deadline and peer
    /// liveness.
    ///
    /// When session recovery is enabled and the first attempt fails, the
    /// lock's lease is consulted: if the recorded holder's node has been
    /// declared dead, the caller competes to reclaim the lock
    /// ([`Armci::try_reclaim_mcs`]) and, on winning, retries the acquire
    /// once over the reset queue.
    pub fn try_lock_mcs(&mut self, id: LockId) -> Result<(), ArmciError> {
        match self.try_lock_mcs_inner(id) {
            Err(e) if self.recovery => {
                if self.try_reclaim_mcs(id)? {
                    self.try_lock_mcs_inner(id)
                } else {
                    Err(e)
                }
            }
            r => r,
        }
    }

    /// Drive one [`McsAcquire`] plan (Figure 5, `request`): the engine
    /// decides the word transitions, this loop performs them against real
    /// segments and the server.
    fn try_lock_mcs_inner(&mut self, id: LockId) -> Result<(), ArmciError> {
        self.check_lock_id(id);
        assert!(
            self.mcs_held.is_none(),
            "MCS locks cannot nest: one node structure per process (paper §3.2.2), already holding {:?}",
            self.mcs_held
        );
        let me_ptr = self.my_mcs_node().pack();
        let mut eng: McsAcquire<GlobalAddr> = McsAcquire::new(self.recovery);
        let mut acts = Vec::new();
        eng.poll(McsAcquireEvent::Start, &mut acts);
        let mut i = 0;
        while i < acts.len() {
            match acts[i] {
                McsAcquireAction::ClearMyNext => {
                    // mynode->next = NULL (local store; the segment is ours).
                    self.my_sync.write_u64(layout::MCS_NEXT, PackedPtr::NULL.0);
                }
                McsAcquireAction::SwapLock => {
                    // prev = swap(Lock, mynode) — local atomic or server
                    // round-trip.
                    let prev = PackedPtr(self.try_rmw(self.mcs_lock_var(id), RmwOp::SwapU64(me_ptr.0))?[0]);
                    eng.poll(McsAcquireEvent::SwapResult(prev.decode()), &mut acts);
                }
                McsAcquireAction::SetMyLocked => {
                    // mynode->locked = TRUE, *then* prev->next = mynode.
                    self.my_sync.write_u64(layout::MCS_LOCKED, 1);
                }
                McsAcquireAction::LinkAfter(prev_addr) => {
                    self.put_u64(prev_addr, me_ptr.0); // prev->next = mynode
                }
                McsAcquireAction::AwaitWake => {
                    // Poll our own locked flag; the releaser clears it
                    // directly — zero messages received, one (or zero)
                    // sent by the releaser.
                    let deadline = self.op_deadline();
                    let sync = self.my_sync.clone();
                    self.wait_local_cond("lock", deadline, move || {
                        sync.atomic_u64(layout::MCS_LOCKED).load(Ordering::Acquire) == 0
                    })?;
                    eng.poll(McsAcquireEvent::LockedCleared, &mut acts);
                }
                McsAcquireAction::SetLease => {
                    // Epoch first, lease second: if a reclamation races in
                    // between, the release sees an advanced epoch and
                    // abandons — the safe direction.
                    self.mcs_lease_epoch_snapshot(id)?;
                    let me_rank = u64::from(self.me().0) + 1;
                    self.mcs_lease_set(id, me_rank)?;
                }
                McsAcquireAction::Acquired => {
                    self.mcs_held = Some(id);
                }
            }
            i += 1;
        }
        debug_assert!(eng.is_acquired());
        Ok(())
    }

    /// Release the software queuing lock (Figure 5, `release`), driving
    /// one [`McsRelease`] plan.
    ///
    /// With session recovery on, the release first validates the lease
    /// epoch captured at acquire time: if reclamation advanced it (a
    /// survivor believed this node dead and reset the queue), the release
    /// is abandoned rather than applied to a queue that no longer
    /// describes us.
    pub fn unlock_mcs(&mut self, id: LockId) {
        self.check_lock_id(id);
        assert_eq!(self.mcs_held, Some(id), "releasing an MCS lock not held");
        if self.mcs_lease_stale(id) {
            self.mcs_held = None;
            return;
        }
        let me_ptr = self.my_mcs_node().pack();
        let mut eng: McsRelease<GlobalAddr> = McsRelease::new(self.recovery);
        let mut acts = Vec::new();
        eng.poll(McsReleaseEvent::Start, &mut acts);
        let mut i = 0;
        while i < acts.len() {
            match acts[i] {
                McsReleaseAction::ReadMyNext => {
                    let next = PackedPtr(self.my_sync.read_u64(layout::MCS_NEXT));
                    eng.poll(McsReleaseEvent::NextValue(next.decode()), &mut acts);
                }
                McsReleaseAction::CasLockToNull => {
                    // Nobody visibly queued: try to swing Lock back to
                    // NULL. This is the compare&swap the paper pays a
                    // round-trip for on remote locks (Figure 10's "new"
                    // curve).
                    let observed = self.cas_u64(self.mcs_lock_var(id), me_ptr.0, PackedPtr::NULL.0);
                    eng.poll(McsReleaseEvent::CasResult { won: observed == me_ptr.0 }, &mut acts);
                }
                McsReleaseAction::AwaitSuccessor => {
                    // A requester won the race on Lock but has not linked
                    // into our next pointer yet; wait for the link
                    // (Figure 5 line 20).
                    let deadline = self.op_deadline();
                    let sync = self.my_sync.clone();
                    unwrap_op(self.wait_local_cond("unlock", deadline, move || {
                        sync.atomic_u64(layout::MCS_NEXT).load(Ordering::Acquire) != 0
                    }));
                    let next = PackedPtr(self.my_sync.read_u64(layout::MCS_NEXT));
                    eng.poll(McsReleaseEvent::NextValue(next.decode()), &mut acts);
                }
                McsReleaseAction::TransferLease(next_addr) => {
                    // Transfer the lease *before* waking the successor so
                    // there is no window where the new holder runs under a
                    // stale lease entry.
                    let _ = self.mcs_lease_set(id, u64::from(next_addr.proc.0) + 1);
                }
                McsReleaseAction::Wake(next_addr) => {
                    // next->locked = FALSE: direct store if node-local, one
                    // one-way message otherwise — the single-message
                    // handoff.
                    self.put_u64(next_addr.add(8), 0);
                }
                McsReleaseAction::ClearLease => {
                    let _ = self.mcs_lease_set(id, 0);
                }
                McsReleaseAction::Released => {
                    self.mcs_held = None;
                }
            }
            i += 1;
        }
        debug_assert!(eng.is_released());
    }

    /// Attempt to reclaim an MCS lock whose recorded lease holder's node
    /// has been declared dead by the session layer's failure detector.
    ///
    /// Returns `Ok(true)` when *this* process won the reclamation (the
    /// lock variable has been reset to NULL and the caller should retry
    /// its acquire), `Ok(false)` when there was nothing to reclaim — no
    /// lease recorded, the holder is still believed alive, or another
    /// survivor won the epoch race (that winner performs the reset).
    ///
    /// The epoch word is the fence: every reclaimer reads it, and only
    /// the one whose `compare&swap(epoch, epoch+1)` observes the value it
    /// read gets to touch the lock variable, so a dead holder is
    /// reclaimed exactly once per failure. Reclamation discards the dead
    /// chain's queue state wholesale — orphaned waiters time out on their
    /// own `locked` polls and must re-request the lock.
    pub fn try_reclaim_mcs(&mut self, id: LockId) -> Result<bool, ArmciError> {
        self.check_lock_id(id);
        let mut eng = McsReclaim::new();
        let mut acts = Vec::new();
        eng.poll(ReclaimEvent::Start, &mut acts);
        let mut won = false;
        let mut i = 0;
        while i < acts.len() {
            match acts[i] {
                ReclaimAction::ReadHolder => {
                    let holder = self.try_rmw(self.mcs_lease_holder_addr(id), RmwOp::FetchAddU64(0))?[0];
                    eng.poll(ReclaimEvent::Holder(holder), &mut acts);
                }
                ReclaimAction::CheckAlive(rank) => {
                    // Both failure sources count: a transport-level lost
                    // link and a membership eviction already recorded by
                    // this process (the eviction may predate this call,
                    // e.g. during a post-eviction lease sweep).
                    let holder_node = self.topology().node_of(ProcId(rank as u32));
                    let alive = !self.mb.peer_is_lost(holder_node) && self.membership.is_alive(rank as usize);
                    eng.poll(ReclaimEvent::AliveResult(alive), &mut acts);
                }
                ReclaimAction::ReadEpoch => {
                    let epoch = self.try_rmw(self.mcs_lease_epoch_addr(id), RmwOp::FetchAddU64(0))?[0];
                    eng.poll(ReclaimEvent::Epoch(epoch), &mut acts);
                }
                ReclaimAction::CasEpoch { expect } => {
                    let epoch_addr = self.mcs_lease_epoch_addr(id);
                    let observed = self.try_rmw(epoch_addr, RmwOp::CasU64 { expect, new: expect + 1 })?[0];
                    eng.poll(ReclaimEvent::EpochCas { won: observed == expect }, &mut acts);
                }
                // We own this epoch: reset the queue and clear the dead
                // lease.
                ReclaimAction::ResetLock => {
                    self.try_rmw(self.mcs_lock_var(id), RmwOp::SwapU64(PackedPtr::NULL.0))?;
                }
                ReclaimAction::ClearHolder => {
                    self.try_put(self.mcs_lease_holder_addr(id), &0u64.to_le_bytes())?;
                }
                ReclaimAction::Finished(w) => won = w,
            }
            i += 1;
        }
        Ok(won)
    }

    /// Sweep every *reachable* MCS lock slot for a lease still recorded
    /// to an evicted rank, reclaiming each such lock
    /// ([`Armci::try_reclaim_mcs`]). Returns how many locks this process
    /// reclaimed (other survivors may win some of the epoch races —
    /// those count for the winner, not for us; either way the slot ends
    /// up clean).
    ///
    /// Reachable means slots hosted by *surviving* owners: a slot in an
    /// evicted rank's own sync segment dies with that rank — no one can
    /// name it again (`try_lock` toward a dead owner fails with
    /// `PeerLost`), and its backing file is swept by the shm-plane
    /// namespace GC. The same holds for hierarchical-barrier counter
    /// slots led by an evicted rank: shrunk groups claim fresh slots in
    /// survivors' segments ([`Armci::shrink_group`]), so dead leaders'
    /// counters need no reclamation, only file-level GC.
    ///
    /// Call after observing an eviction (e.g. when a `try_lock` fails
    /// with `PeerLost` under `OnPeerLoss::Degrade`) to stop dead holders
    /// from wedging locks until each is individually contended.
    pub fn try_reclaim_dead_leases(&mut self) -> Result<usize, ArmciError> {
        let view = self.membership_view();
        let mut reclaimed = 0;
        for owner in 0..self.nprocs() {
            if !view.alive.contains(owner) {
                continue;
            }
            for idx in 0..self.locks_per_proc {
                let id = LockId { owner: ProcId(owner as u32), idx };
                let holder = self.try_rmw(self.mcs_lease_holder_addr(id), RmwOp::FetchAddU64(0))?[0];
                let dead = holder != 0 && !view.alive.contains(holder as usize - 1);
                if dead && self.try_reclaim_mcs(id)? {
                    reclaimed += 1;
                }
            }
        }
        Ok(reclaimed)
    }

    // ------------------------------------------------------------------
    // Swap-only release (the paper's future work, realized)
    // ------------------------------------------------------------------

    /// Release an MCS-queued lock using only `swap` — the paper's §5
    /// future work ("eliminate the need for the compare&swap operation
    /// when releasing a lock"). Acquire with [`Armci::lock_mcs`] as
    /// usual; the two release styles interoperate on the same lock.
    ///
    /// Algorithm (Fu/Tzeng-style recovery): with no known successor, swing
    /// the `Lock` word to NULL with a `swap`. If the swap returns our own
    /// node, the lock is free. Otherwise one or more waiters enqueued
    /// behind us (`me → W1 → … → Wk`, where the swap returned `Wk`) and
    /// the NULL we just stored may admit *usurpers*. Wait for `W1` to
    /// link into our `next`, then `swap` the orphan tail `Wk` back into
    /// `Lock`:
    ///
    /// * swap returned NULL — no usurper; grant `W1` directly;
    /// * swap returned a usurper tail `Um` — a usurper holds the lock;
    ///   append the orphan chain after it (`Um.next = W1`) and do *not*
    ///   grant. Global queue becomes `U1 … Um → W1 … Wk` with `Lock = Wk`.
    ///
    /// Usurpers overtake the orphaned waiters, so strict FIFO ordering is
    /// traded away; mutual exclusion and liveness are preserved.
    pub fn unlock_mcs_swap(&mut self, id: LockId) {
        self.check_lock_id(id);
        assert_eq!(self.mcs_held, Some(id), "releasing an MCS lock not held");
        if self.mcs_lease_stale(id) {
            // Same lease-epoch validation as [`Armci::unlock_mcs`].
            self.mcs_held = None;
            return;
        }
        let me_ptr = self.my_mcs_node().pack();

        let next = PackedPtr(self.my_sync.read_u64(layout::MCS_NEXT));
        if let Some(next_addr) = next.decode() {
            // Successor known: plain single-message handoff.
            let _ = self.mcs_lease_set(id, u64::from(next_addr.proc.0) + 1);
            self.put_u64(next_addr.add(8), 0);
            self.mcs_held = None;
            return;
        }
        // No visible successor: detach the queue with a swap.
        let prev = PackedPtr(self.swap_u64(self.mcs_lock_var(id), PackedPtr::NULL.0));
        if prev == me_ptr {
            let _ = self.mcs_lease_set(id, 0);
            self.mcs_held = None;
            return; // we really were the tail: lock is free
        }
        // Orphaned chain me → W1 … Wk (= prev). Wait for W1's link.
        let deadline = self.op_deadline();
        let sync = self.my_sync.clone();
        unwrap_op(self.wait_local_cond("unlock", deadline, move || {
            sync.atomic_u64(layout::MCS_NEXT).load(Ordering::Acquire) != 0
        }));
        let w1 = PackedPtr(self.my_sync.read_u64(layout::MCS_NEXT));
        let w1_addr = w1.decode().expect("linked successor decodes");
        // Restore the orphan tail; learn whether usurpers slipped in.
        let usurper = PackedPtr(self.swap_u64(self.mcs_lock_var(id), prev.0));
        if let Some(um_addr) = usurper.decode() {
            // A usurper holds the lock; queue the orphans behind its tail.
            // (The usurper recorded its own lease when it acquired, so no
            // lease write here.)
            self.put_u64(um_addr, w1.0); // Um.next = W1
        } else {
            // Nobody usurped: hand the lock to W1.
            let _ = self.mcs_lease_set(id, u64::from(w1_addr.proc.0) + 1);
            self.put_u64(w1_addr.add(8), 0);
        }
        self.mcs_held = None;
    }

    // ------------------------------------------------------------------
    // MCS over paired-long atomics (encoding ablation)
    // ------------------------------------------------------------------

    fn my_mcs_pair_node(&self) -> GlobalAddr {
        GlobalAddr::new(self.me(), SegId(0), layout::MCS_PAIR_NEXT)
    }

    fn mcs_pair_lock_var(&self, id: LockId) -> GlobalAddr {
        GlobalAddr::new(id.owner, SegId(0), layout::mcs_pair_lock(id.idx))
    }

    /// Acquire with the MCS lock over paired-long atomics — the paper's
    /// literal mechanism (it extended ARMCI with atomic operations on
    /// pairs of longs because `(proc, address)` tuples did not fit one
    /// word).
    pub fn lock_mcs_pair(&mut self, id: LockId) {
        unwrap_op(self.try_lock_mcs_pair(id));
    }

    /// Fallible [`Armci::lock_mcs_pair`].
    pub fn try_lock_mcs_pair(&mut self, id: LockId) -> Result<(), ArmciError> {
        self.check_lock_id(id);
        assert!(self.mcs_pair_held.is_none(), "paired MCS locks cannot nest, already holding {:?}", self.mcs_pair_held);
        let mynode = self.my_mcs_pair_node();
        let me_pair = mynode.to_pair();

        self.my_sync.pair_swap(layout::MCS_PAIR_NEXT, [0, 0]);
        let lock_var = self.mcs_pair_lock_var(id);
        let prev = self.try_rmw(lock_var, RmwOp::PairSwap(me_pair))?;
        if let Some(prev_addr) = GlobalAddr::from_pair(prev) {
            self.my_sync.write_u64(layout::MCS_PAIR_LOCKED, 1);
            self.put_pair(prev_addr, me_pair);
            let deadline = self.op_deadline();
            let sync = self.my_sync.clone();
            self.wait_local_cond("lock", deadline, move || {
                sync.atomic_u64(layout::MCS_PAIR_LOCKED).load(Ordering::Acquire) == 0
            })?;
        }
        self.mcs_pair_held = Some(id);
        Ok(())
    }

    /// Release the paired-long MCS lock.
    pub fn unlock_mcs_pair(&mut self, id: LockId) {
        self.check_lock_id(id);
        assert_eq!(self.mcs_pair_held, Some(id), "releasing a paired MCS lock not held");
        let me_pair = self.my_mcs_pair_node().to_pair();

        let mut next = self.my_sync.pair_read(layout::MCS_PAIR_NEXT);
        if next == [0, 0] {
            let observed = self.pair_cas(self.mcs_pair_lock_var(id), me_pair, [0, 0]);
            if observed == me_pair {
                self.mcs_pair_held = None;
                return;
            }
            let deadline = self.op_deadline();
            let sync = self.my_sync.clone();
            unwrap_op(
                self.wait_local_cond("unlock", deadline, move || sync.pair_read(layout::MCS_PAIR_NEXT) != [0, 0]),
            );
            next = self.my_sync.pair_read(layout::MCS_PAIR_NEXT);
        }
        let next_addr = GlobalAddr::from_pair(next).expect("non-null next decodes");
        // locked flag sits 16 bytes above the pair next field.
        self.put_u64(GlobalAddr::new(next_addr.proc, next_addr.seg, layout::MCS_PAIR_LOCKED), 0);
        self.mcs_pair_held = None;
    }
}
