//! Integration tests for the non-blocking get API and the pipelined
//! AllFence extension.

use armci_core::{run_cluster, ArmciCfg, GlobalAddr, Strided2D};
use armci_transport::{LatencyModel, ProcId};
use std::time::{Duration, Instant};

fn zero_lat(nodes: u32) -> ArmciCfg {
    ArmciCfg::flat(nodes, LatencyModel::zero())
}

#[test]
fn nbget_returns_correct_data() {
    let out = run_cluster(zero_lat(3), |a| {
        let seg = a.malloc(128);
        let mine = a.local_segment(seg);
        for i in 0..16 {
            mine.write_u64(i * 8, (a.rank() * 100 + i) as u64);
        }
        a.barrier();
        // Fetch two remote words from each peer, overlapped.
        let mut handles = Vec::new();
        for peer in 0..a.nprocs() {
            handles.push((peer, a.nbget(GlobalAddr::new(ProcId(peer as u32), seg, 0), 8)));
            handles.push((peer, a.nbget(GlobalAddr::new(ProcId(peer as u32), seg, 8), 8)));
        }
        let mut ok = true;
        for (i, (peer, h)) in handles.into_iter().enumerate() {
            let data = a.nbget_wait(h);
            let want = (peer * 100 + (i % 2)) as u64;
            ok &= u64::from_le_bytes(data.try_into().unwrap()) == want;
        }
        a.barrier();
        ok
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn nbget_overlaps_latency() {
    // k outstanding gets to distinct nodes cost ~1 round trip, not k.
    let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(5));
    let out = run_cluster(ArmciCfg::flat(4, lat), |a| {
        let seg = a.malloc(64);
        a.barrier();
        let t0 = Instant::now();
        if a.rank() == 0 {
            let hs: Vec<_> = (1..4).map(|p| a.nbget(GlobalAddr::new(ProcId(p), seg, 0), 8)).collect();
            for h in hs {
                let _ = a.nbget_wait(h);
            }
        }
        let el = t0.elapsed();
        a.barrier();
        (a.rank(), el)
    });
    let (_, el) = out[0];
    assert!(el >= Duration::from_millis(10), "one round trip minimum: {el:?}");
    assert!(el < Duration::from_millis(25), "three gets must overlap: {el:?}");
}

#[test]
fn nbget_strided_roundtrip() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(512);
        let desc = Strided2D { offset: 0, rows: 4, row_bytes: 8, stride: 32 };
        if a.rank() == 1 {
            let data: Vec<u8> = (0..32).collect();
            a.put_strided(ProcId(0), seg, desc, &data);
            a.fence(ProcId(0));
        }
        a.barrier();
        if a.rank() == 1 {
            let h = a.nbget_strided(ProcId(0), seg, desc);
            let got = a.nbget_wait(h);
            assert_eq!(got, (0..32).collect::<Vec<u8>>());
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn nbget_local_is_immediate() {
    let out = run_cluster(zero_lat(1).with_procs_per_node(2), |a| {
        let seg = a.malloc(64);
        a.local_segment(seg).write_u64(0, 99);
        a.barrier();
        let peer = ProcId((1 - a.rank()) as u32);
        let h = a.nbget(GlobalAddr::new(peer, seg, 0), 8);
        assert!(matches!(h, armci_core::armci::NbGet::Ready(_)));
        let v = u64::from_le_bytes(a.nbget_wait(h).try_into().unwrap());
        a.barrier();
        v == 99
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
#[should_panic]
fn nbget_out_of_order_wait_rejected() {
    run_cluster(zero_lat(2), |a| {
        if a.rank() == 0 {
            let seg = a.malloc(64);
            let h1 = a.nbget(GlobalAddr::new(ProcId(1), seg, 0), 8);
            let h2 = a.nbget(GlobalAddr::new(ProcId(1), seg, 8), 8);
            let _ = a.nbget_wait(h2); // must panic: h1 is older
            let _ = a.nbget_wait(h1);
        } else {
            let _ = a.malloc(64);
        }
    });
}

#[test]
fn pipelined_allfence_is_correct() {
    let out = run_cluster(zero_lat(5), |a| {
        let seg = a.malloc(8 * a.nprocs());
        for r in 0..a.nprocs() {
            if r != a.rank() {
                a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 5);
            }
        }
        a.allfence_pipelined();
        armci_msglib::Group::world(a.nprocs()).barrier_binary_exchange(a);
        let mine = a.local_segment(seg);
        (0..a.nprocs()).filter(|&r| r != a.rank()).all(|r| mine.read_u64(8 * r) == 5)
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn pipelined_allfence_overlaps_roundtrips() {
    // With L = 5ms and 3 touched servers: sequential allfence >= 30ms,
    // pipelined ~10ms.
    let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(5));
    let out = run_cluster(ArmciCfg::flat(4, lat), |a| {
        let seg = a.malloc(8 * a.nprocs());
        a.barrier();
        let mut durations = (Duration::ZERO, Duration::ZERO);
        if a.rank() == 0 {
            for r in 1..4u32 {
                a.put_u64(GlobalAddr::new(ProcId(r), seg, 0), 1);
            }
            let t0 = Instant::now();
            a.allfence_pipelined();
            durations.0 = t0.elapsed();

            for r in 1..4u32 {
                a.put_u64(GlobalAddr::new(ProcId(r), seg, 0), 2);
            }
            let t0 = Instant::now();
            a.allfence();
            durations.1 = t0.elapsed();
        }
        a.barrier();
        durations
    });
    let (piped, seq) = out[0];
    assert!(piped >= Duration::from_millis(10), "pipelined must still round-trip: {piped:?}");
    assert!(seq >= Duration::from_millis(30), "sequential pays per-server: {seq:?}");
    assert!(piped < seq / 2, "pipelining must overlap: {piped:?} !< {seq:?}/2");
}

#[test]
fn pipelined_allfence_skips_untouched() {
    let out = run_cluster(zero_lat(4), |a| {
        a.barrier();
        let before = a.stats().fence_roundtrips;
        a.allfence_pipelined(); // nothing outstanding anywhere
        a.barrier();
        a.stats().fence_roundtrips == before
    });
    assert!(out.into_iter().all(|ok| ok));
}
