//! Allocation-budget regression test for the zero-copy wire path.
//!
//! Before the pooled-encode/borrowed-decode work, one remote `put_u64`
//! cost three heap allocations: the encode `Vec` on the client, the
//! owned payload `Vec` from `Req::decode` on the server, and the ack
//! body. All three are gone — the request encodes into an inline `Body`
//! (or a pooled buffer), the server decodes a borrowed [`ReqView`] and
//! applies it straight into the segment, and the ack is inline. What
//! remains is the amortized block allocation inside the transport
//! channel (one block per ~32 sends), so the budget below — **one**
//! allocation per put, down from three-plus — still leaves an order of
//! magnitude of headroom while catching any reintroduced per-message
//! `Vec`.
//!
//! This test lives in its own binary so the counting `#[global_allocator]`
//! observes only this scenario, and so no sibling test thread allocates
//! concurrently during the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use armci_core::runtime::run_cluster;
use armci_core::{ArmciCfg, GlobalAddr};
use armci_transport::{LatencyModel, ProcId};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP: usize = 2000;
const MEASURED: usize = 1000;

/// A steady stream of remote `put_u64` + one fence must average at most
/// one heap allocation per put *process-wide* (client, server and ack
/// path combined).
#[test]
fn remote_put_stays_within_allocation_budget() {
    let cfg = ArmciCfg::flat(2, LatencyModel::zero());
    let deltas = run_cluster(cfg, |a| {
        let seg = a.malloc(1 << 12);
        let peer = ProcId(((a.rank() + 1) % a.nprocs()) as u32);
        a.barrier();
        // Warm every lazy path: encode pool slots, channel blocks, thread
        // parkers, the server's reply pool, segment page faults.
        for i in 0..WARMUP {
            a.put_u64(GlobalAddr::new(peer, seg, 8 * (i % 64)), i as u64);
        }
        a.fence(peer);
        a.barrier();
        let delta = if a.rank() == 0 {
            let before = ALLOCS.load(Ordering::SeqCst);
            for i in 0..MEASURED {
                a.put_u64(GlobalAddr::new(peer, seg, 8 * (i % 64)), i as u64);
            }
            a.fence(peer);
            Some(ALLOCS.load(Ordering::SeqCst) - before)
        } else {
            None
        };
        a.barrier();
        delta
    });
    let delta = deltas[0].expect("rank 0 measured");
    eprintln!("{MEASURED} remote put_u64 + fence: {delta} allocations process-wide");
    assert!(
        delta <= MEASURED as u64,
        "allocation budget exceeded: {delta} allocations for {MEASURED} puts (budget: 1 per put)"
    );
}
