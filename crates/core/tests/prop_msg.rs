//! Property-based tests of the ARMCI wire codec: arbitrary requests must
//! round-trip bit-exactly (a malformed frame would corrupt remote memory,
//! the worst possible failure mode for a one-sided library).

use armci_core::msg::{Req, ReqView, RmwOp};
use armci_core::Strided2D;
use armci_transport::{ProcId, SegId};
use proptest::prelude::*;

fn arb_rmw() -> impl Strategy<Value = RmwOp> {
    prop_oneof![
        any::<u64>().prop_map(RmwOp::FetchAddU64),
        any::<i64>().prop_map(RmwOp::FetchAddI64),
        any::<u64>().prop_map(RmwOp::SwapU64),
        (any::<u64>(), any::<u64>()).prop_map(|(expect, new)| RmwOp::CasU64 { expect, new }),
        (any::<u64>(), any::<u64>()).prop_map(|(a, b)| RmwOp::PairSwap([a, b])),
        (any::<[u64; 2]>(), any::<[u64; 2]>()).prop_map(|(expect, new)| RmwOp::PairCas { expect, new }),
    ]
}

fn arb_desc() -> impl Strategy<Value = Strided2D> {
    (0usize..1 << 20, 0usize..64, 0usize..256, 0usize..512).prop_map(|(offset, rows, row_bytes, stride)| Strided2D {
        offset,
        rows,
        row_bytes,
        stride,
    })
}

fn arb_req() -> impl Strategy<Value = Req> {
    let proc = (0u32..1024).prop_map(ProcId);
    let seg = (0u32..16).prop_map(SegId);
    let data = proptest::collection::vec(any::<u8>(), 0..200);
    prop_oneof![
        (proc.clone(), seg.clone(), any::<u32>(), data.clone()).prop_map(|(dst, seg, offset, data)| Req::Put {
            dst,
            seg,
            offset: offset as u64,
            data
        }),
        (proc.clone(), seg.clone(), arb_desc(), data.clone())
            .prop_map(|(dst, seg, desc, data)| { Req::PutStrided { dst, seg, desc, data } }),
        (proc.clone(), seg.clone(), any::<u32>(), any::<u64>()).prop_map(|(dst, seg, offset, val)| Req::PutU64 {
            dst,
            seg,
            offset: offset as u64,
            val
        }),
        (proc.clone(), seg.clone(), any::<u32>(), any::<[u64; 2]>())
            .prop_map(|(dst, seg, offset, val)| { Req::PutPair { dst, seg, offset: offset as u64, val } }),
        (proc.clone(), seg.clone(), any::<u32>(), any::<f64>(), proptest::collection::vec(any::<f64>(), 0..20))
            .prop_map(|(dst, seg, offset, scale, vals)| Req::AccF64 { dst, seg, offset: offset as u64, scale, vals }),
        (proc.clone(), seg.clone(), any::<u32>(), any::<u32>()).prop_map(|(dst, seg, offset, len)| Req::Get {
            dst,
            seg,
            offset: offset as u64,
            len
        }),
        (proc.clone(), seg.clone(), arb_desc()).prop_map(|(dst, seg, desc)| Req::GetStrided { dst, seg, desc }),
        (proc.clone(), seg.clone(), any::<u32>(), arb_rmw()).prop_map(|(dst, seg, offset, op)| Req::Rmw {
            dst,
            seg,
            offset: offset as u64,
            op
        }),
        (proc.clone(), seg.clone(), proptest::collection::vec((any::<u32>().prop_map(|o| o as u64), 0u32..64), 0..16))
            .prop_map(|(dst, seg, runs)| {
                let total: usize = runs.iter().map(|&(_, l)| l as usize).sum();
                Req::PutVector { dst, seg, runs, data: vec![0xCD; total] }
            }),
        (proc.clone(), seg.clone(), proptest::collection::vec((any::<u32>().prop_map(|o| o as u64), 0u32..64), 0..16))
            .prop_map(|(dst, seg, runs)| Req::GetVector { dst, seg, runs }),
        (
            proc.clone(),
            seg.clone(),
            0u32..16,
            proptest::collection::vec((any::<u32>().prop_map(|o| o as u64), 0u32..64), 0..16)
        )
            .prop_map(|(dst, seg, slot, runs)| {
                let total: usize = runs.iter().map(|&(_, l)| l as usize).sum();
                Req::PutNotify { dst, seg, slot, runs, data: vec![0xAB; total] }
            }),
        Just(Req::FenceReq),
        (proc.clone(), 0u32..8).prop_map(|(owner, idx)| Req::LockReq { owner, idx }),
        (proc, 0u32..8).prop_map(|(owner, idx)| Req::UnlockReq { owner, idx }),
        Just(Req::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn any_request_roundtrips(req in arb_req()) {
        let encoded = req.encode();
        let decoded = Req::decode(&encoded);
        // NaN-bearing AccF64 scales/values compare unequal under PartialEq;
        // compare via re-encoding, which is bit-exact.
        prop_assert_eq!(decoded.encode(), encoded);
    }

    #[test]
    fn counted_put_classification_is_stable(req in arb_req()) {
        // Encoding and decoding must agree on whether the op bumps
        // op_done — a mismatch would desynchronize ARMCI_Barrier.
        let decoded = Req::decode(&req.encode());
        prop_assert_eq!(decoded.is_counted_put(), req.is_counted_put());
    }

    #[test]
    fn borrowed_decode_agrees_with_owned(req in arb_req()) {
        // The server's zero-copy decode (`ReqView`) is written
        // independently of `Req::decode`; they must see the identical
        // request in every frame. Compare via re-encoding (bit-exact even
        // for NaN-bearing floats).
        let encoded = req.encode();
        let owned = Req::decode(&encoded);
        let view = ReqView::decode(&encoded);
        prop_assert_eq!(view.to_owned().encode(), owned.encode());
        prop_assert_eq!(view.is_counted_put(), owned.is_counted_put());
    }

    #[test]
    fn encode_into_reused_buffer_matches_fresh_encode(req in arb_req()) {
        // Pooled buffers arrive with stale capacity; framing into one must
        // produce exactly the bytes of a fresh `encode()`.
        let fresh = req.encode();
        let mut pooled = vec![0xAA; 64];
        pooled.clear();
        req.encode_into(&mut pooled);
        prop_assert_eq!(pooled, fresh);
    }
}
