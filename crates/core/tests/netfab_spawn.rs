//! Multi-process smoke test: `run_cluster_spawned` re-executes this test
//! binary once per extra node. The child processes re-enter the libtest
//! harness with `["spawn_smoke", "--exact"]` as argv, which routes them
//! straight back to this single test — the one call site rule.
//!
//! Kept to exactly one test function so the child's filter can never
//! match anything else.

use armci_core::{run_cluster_spawned, Armci, ArmciCfg, GlobalAddr};
use armci_transport::{LatencyModel, ProcId};

fn everyone_reports_to_rank0(a: &mut Armci) -> u64 {
    let seg = a.malloc(8 * a.nprocs());
    a.barrier();
    a.put_u64(GlobalAddr::new(ProcId(0), seg, 8 * a.rank()), a.rank() as u64 + 1);
    a.barrier();
    if a.rank() == 0 {
        let mine = a.local_segment(seg);
        (0..a.nprocs()).map(|r| mine.read_u64(8 * r)).sum()
    } else {
        0
    }
}

#[test]
fn spawn_smoke() {
    let cfg = ArmciCfg { nodes: 2, procs_per_node: 2, latency: LatencyModel::zero(), ..Default::default() };
    let child_args: Vec<String> =
        ["spawn_smoke", "--exact", "--test-threads=1"].iter().map(|s| s.to_string()).collect();
    let out = run_cluster_spawned(cfg, &child_args, everyone_reports_to_rank0);
    // This process hosts node 0 = ranks 0 and 1; ranks 2 and 3 lived in
    // the spawned child. Rank 0 saw every rank's contribution: 1+2+3+4.
    assert_eq!(out, vec![10, 0]);
}
