//! Multi-process hierarchical-barrier test: two single-process "nodes"
//! (separate OS processes on the same host) form one shared-memory
//! domain through the shm plane, so a hierarchical group barrier — puts
//! included — crosses the process boundary with **zero wire messages**.
//! The contrast leg pins the shm plane off: every domain would be a
//! singleton, so the hierarchy is discarded and the flat combined
//! barrier takes the wire.
//!
//! Kept to exactly one test function so the spawned children's libtest
//! filter can never match anything else (see `netfab_spawn.rs`). The
//! workload closure is config-agnostic because every spawned child
//! re-enters the *first* `run_cluster_spawned` call site with whichever
//! config payload its parent serialized; the parent asserts per-leg.

use armci_core::{run_cluster_spawned, Armci, ArmciCfg, GlobalAddr};
use armci_transport::{LatencyModel, ProcId};

/// Put to the peer, group barrier, read what the peer put. Returns the
/// domain count (0 when no hierarchy formed) and the wire messages
/// spent from the end of group formation onward.
fn put_barrier_read(a: &mut Armci) -> (usize, u64) {
    let seg = a.malloc(8);
    a.barrier();
    let g = a.group(&[0, 1]);
    let ndomains = g.domains().map_or(0, |d| d.len());
    // Formation's allgathers ride the wire; measure from here.
    let before = a.stats().wire_msgs;
    let other = ProcId(((a.rank() + 1) % 2) as u32);
    a.put_u64(GlobalAddr::new(other, seg, 0), 5 + a.rank() as u64);
    a.barrier_group(&g);
    let spent = a.stats().wire_msgs - before;
    assert_eq!(a.local_segment(seg).read_u64(0), 5 + other.0 as u64, "peer's put not visible after group barrier");
    a.barrier();
    (ndomains, spent)
}

#[test]
fn hier_group_barrier_is_zero_wire_intra_host() {
    let child_args: Vec<String> = ["hier_group_barrier_is_zero_wire_intra_host", "--exact", "--test-threads=1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let base = ArmciCfg { nodes: 2, procs_per_node: 1, latency: LatencyModel::zero(), ..Default::default() }
        .with_hier_collectives(true);

    // Shm plane on: both processes land in one shm domain; the put is a
    // direct store and the barrier runs entirely on shared counters.
    let on = run_cluster_spawned(base.clone().with_shm_plane(Some(true)), &child_args, put_barrier_read);
    assert_eq!(on, vec![(1, 0)], "same host must form one shm domain and barrier zero-wire");

    // Shm plane off: the processes cannot reach each other's memory, so
    // every domain would be a singleton — the hierarchy is discarded and
    // the flat combined barrier takes the wire.
    let off = run_cluster_spawned(base.with_shm_plane(Some(false)), &child_args, put_barrier_read);
    assert_eq!(off[0].0, 0, "all-singleton partition must fall back to the flat protocol");
    assert!(off[0].1 > 0, "without the shm plane the barrier must use the wire");
}
