//! Chaos-soak integration tests for the session-recovery layer.
//!
//! These are the acceptance scenarios for recovery: scripted transient
//! faults (resets, truncations, stalls) must be *invisible* — the run
//! completes and its final state digests match a fault-free run with the
//! same seed — while a node kill must surface as `Err(PeerLost)` on
//! every survivor within the suspect window, with the dead rank's MCS
//! lock reclaimed so survivors' `try_lock` still makes progress.
//!
//! All tests are loopback-only (no process spawning) and every fault
//! schedule is derived from a fixed seed, so a failure reproduces
//! byte-for-byte.

use std::time::{Duration, Instant};

use armci_core::{
    chaos_plan, chaos_workload, run_cluster_net_loopback, ArmciCfg, ArmciError, ChaosError, FaultAction, FaultPlan,
    FaultSpec, GlobalAddr, LockAlgo, LockId, OnPeerLoss,
};
use armci_transport::{LatencyModel, ProcId};

const SEED: u64 = 0x0c0f_fee0_dead_beef;

fn chaos_cfg(nodes: u32, faults: FaultPlan) -> ArmciCfg {
    ArmciCfg::builder()
        .nodes(nodes)
        .procs_per_node(1)
        .latency(LatencyModel::zero())
        .lock_algo(LockAlgo::Mcs)
        .op_timeout(Duration::from_secs(20))
        .recovery(true)
        .heartbeat_interval(Duration::from_millis(25))
        .suspect_after(Duration::from_millis(600))
        .faults(faults)
        .build()
        .expect("valid config")
}

/// The headline soak: a seeded schedule of recoverable faults must leave
/// the run indistinguishable from a fault-free one — every rank
/// completes, every shadow-model check passes, and the per-rank digests
/// of the final visible state are identical between the two runs.
#[test]
fn recoverable_chaos_matches_fault_free_digests() {
    let rounds = 12;
    let faulty = chaos_plan(SEED, 3, 5);
    assert!(!faulty.is_empty());

    let clean = run_cluster_net_loopback(chaos_cfg(3, FaultPlan::new()), move |a| chaos_workload(a, SEED, rounds));
    let chaotic = run_cluster_net_loopback(chaos_cfg(3, faulty), move |a| chaos_workload(a, SEED, rounds));

    let clean: Vec<u64> =
        clean.into_iter().map(|r| r.unwrap_or_else(|e| panic!("fault-free rank failed: {e}"))).collect();
    let chaotic: Vec<u64> =
        chaotic.into_iter().map(|r| r.unwrap_or_else(|e| panic!("recoverable-fault rank failed: {e}"))).collect();
    assert_eq!(clean, chaotic, "digests diverged: recovery lost, duplicated, or reordered a frame");
}

/// Acceptance scenario: a connection reset scripted to land mid-barrier
/// must not fail the run when recovery is on — the session layer
/// reconnects and replays, and every barrier completes. (Contrast with
/// `netfab_faults::reset_conn_fails_both_ranks`, the same fault with
/// recovery off.)
#[test]
fn reset_mid_barrier_completes_with_recovery() {
    let faults = FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 2, action: FaultAction::ResetConn });
    let out = run_cluster_net_loopback(chaos_cfg(2, faults), |a| {
        for _ in 0..10 {
            a.try_barrier()?;
        }
        Ok::<(), ArmciError>(())
    });
    assert_eq!(out, vec![Ok(()), Ok(())]);
}

/// A mid-frame truncation (crashed-writer signature) is also recoverable:
/// the partial frame is discarded by the reader, the link reconnects, and
/// replay resends everything past the receiver's cursor.
#[test]
fn truncated_frame_recovers_with_replay() {
    let faults =
        FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 3, action: FaultAction::TruncateFrame });
    let out = run_cluster_net_loopback(chaos_cfg(2, faults), |a| {
        for _ in 0..10 {
            a.try_barrier()?;
        }
        Ok::<(), ArmciError>(())
    });
    assert_eq!(out, vec![Ok(()), Ok(())]);
}

/// Node death under recovery: the killed rank holds a rank-0-hosted MCS
/// lock when its node dies mid-storm. Every survivor must observe
/// `Err(PeerLost)` within the suspect window (plus slack), and the dead
/// holder's lease must let a survivor reclaim the lock — `try_lock`
/// eventually succeeds instead of timing out forever.
#[test]
fn node_kill_surfaces_peer_lost_and_lock_is_reclaimed() {
    let suspect_after = Duration::from_millis(600);
    let faults = FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 30, action: FaultAction::KillNode });
    let cfg = ArmciCfg::builder()
        .nodes(3)
        .procs_per_node(1)
        .latency(LatencyModel::zero())
        .lock_algo(LockAlgo::Mcs)
        .op_timeout(Duration::from_secs(2))
        .recovery(true)
        .heartbeat_interval(Duration::from_millis(25))
        .suspect_after(suspect_after)
        // The kill is triggered by the doomed rank's put storm crossing
        // the wire; pinned off so the shm CI leg can't reroute it (the
        // shm-plane variant below covers that configuration).
        .shm_plane(Some(false))
        .faults(faults)
        .build()
        .expect("valid config");

    let out = run_cluster_net_loopback(cfg, move |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let me = a.me().0;
        if me == 1 {
            // Doomed rank: take the lock, let everyone see it held, then
            // storm puts at rank 0 until the scripted kill fires.
            a.try_lock(lock).map_err(ChaosError::Op)?;
            a.try_barrier().map_err(ChaosError::Op)?;
            let seg = a.malloc(8);
            let dst = GlobalAddr::new(ProcId(0), seg, 0);
            for i in 0..200u64 {
                a.try_put(dst, &i.to_le_bytes()).map_err(ChaosError::Op)?;
                a.try_fence(ProcId(0)).map_err(ChaosError::Op)?;
            }
            return Err(ChaosError::Invariant("doomed rank outlived its kill".into()));
        }
        // Survivors: pass the barrier while everyone is alive, then poll
        // barriers until the failure detector declares node 1 dead.
        a.try_barrier().map_err(ChaosError::Op)?;
        let _ = a.malloc(8);
        let detect_start = Instant::now();
        loop {
            match a.try_barrier() {
                Err(ArmciError::PeerLost { .. }) => break,
                Ok(()) | Err(ArmciError::Timeout { .. }) => {
                    if detect_start.elapsed() > suspect_after + Duration::from_secs(10) {
                        return Err(ChaosError::Invariant("survivor never observed PeerLost".into()));
                    }
                }
                Err(e) => return Err(ChaosError::Op(e)),
            }
        }
        let detected_in = detect_start.elapsed();
        // The dead rank holds the lock; reclamation must unwedge it.
        let reclaim_start = Instant::now();
        loop {
            match a.try_lock(lock) {
                Ok(()) => break,
                Err(_) if reclaim_start.elapsed() < Duration::from_secs(15) => {}
                Err(e) => return Err(ChaosError::Op(e)),
            }
        }
        a.unlock(lock);
        Ok(detected_in)
    });

    assert_eq!(out.len(), 3);
    assert!(out[1].is_err(), "killed rank must fail, got {:?}", out[1]);
    for rank in [0usize, 2] {
        match &out[rank] {
            Ok(detected_in) => assert!(
                *detected_in < suspect_after + Duration::from_secs(10),
                "rank {rank} took {detected_in:?} to observe PeerLost"
            ),
            Err(e) => panic!("surviving rank {rank} failed: {e}"),
        }
    }
}

/// The node-kill acceptance scenario with the **shm data plane on**: the
/// victim's one-sided traffic crosses no wire, so the kill is driven by
/// barrier frames instead of a put storm, and the dead holder's MCS lock
/// must still be reclaimed — the lease words live in rank 0's mapped
/// sync segment and survivors clear them with one-sided CAS/puts that
/// never touch the (dead) wire link.
#[test]
#[cfg(unix)]
fn node_kill_with_shm_plane_reclaims_lock() {
    let suspect_after = Duration::from_millis(600);
    let faults = FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 30, action: FaultAction::KillNode });
    let cfg = ArmciCfg::builder()
        .nodes(3)
        .procs_per_node(1)
        .latency(LatencyModel::zero())
        .lock_algo(LockAlgo::Mcs)
        .op_timeout(Duration::from_secs(2))
        .recovery(true)
        .heartbeat_interval(Duration::from_millis(25))
        .suspect_after(suspect_after)
        .shm_plane(Some(true))
        .faults(faults)
        .build()
        .expect("valid config");

    let out = run_cluster_net_loopback(cfg, move |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let me = a.me().0;
        if me == 1 {
            // Doomed rank: take the lock, then keep the barrier traffic
            // flowing until the scripted kill fires on the wire.
            a.try_lock(lock).map_err(ChaosError::Op)?;
            a.try_barrier().map_err(ChaosError::Op)?;
            for _ in 0..10_000 {
                a.try_barrier().map_err(ChaosError::Op)?;
            }
            return Err(ChaosError::Invariant("doomed rank outlived its kill".into()));
        }
        // Survivors: barrier until the failure detector speaks.
        a.try_barrier().map_err(ChaosError::Op)?;
        let detect_start = Instant::now();
        loop {
            match a.try_barrier() {
                Err(ArmciError::PeerLost { .. }) => break,
                Ok(()) | Err(ArmciError::Timeout { .. }) => {
                    if detect_start.elapsed() > suspect_after + Duration::from_secs(10) {
                        return Err(ChaosError::Invariant("survivor never observed PeerLost".into()));
                    }
                }
                Err(e) => return Err(ChaosError::Op(e)),
            }
        }
        // The dead rank holds the lock; the lease lets survivors reclaim
        // it through the shared mapping and lock again.
        let reclaim_start = Instant::now();
        loop {
            match a.try_lock(lock) {
                Ok(()) => break,
                Err(_) if reclaim_start.elapsed() < Duration::from_secs(15) => {}
                Err(e) => return Err(ChaosError::Op(e)),
            }
        }
        a.unlock(lock);
        Ok(())
    });

    assert_eq!(out.len(), 3);
    assert!(out[1].is_err(), "killed rank must fail, got {:?}", out[1]);
    for rank in [0usize, 2] {
        assert!(out[rank].is_ok(), "surviving rank {rank} failed: {:?}", out[rank]);
    }
}

/// Degraded-mode acceptance: a node kill under `OnPeerLoss::Degrade` must
/// not strand the survivors — each one converges on the shrunk membership
/// view (epoch bumped, dead rank evicted), rebuilds the world group over
/// the survivor set, and completes a group barrier on it, all within
/// twice the suspect window. Data plane correctness rides along: the
/// survivors then exchange one-sided puts over the shrunk group and the
/// FNV digest of each survivor's visible state must match a locally
/// computed shadow model (the dead rank's slot stays out of the digest).
#[test]
fn node_kill_under_degrade_converges_and_completes_shrunk_barrier() {
    let suspect_after = Duration::from_secs(1);
    let budget = 2 * suspect_after;
    let faults = FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 30, action: FaultAction::KillNode });
    let cfg = ArmciCfg::builder()
        .nodes(3)
        .procs_per_node(1)
        .latency(LatencyModel::zero())
        .lock_algo(LockAlgo::Mcs)
        .op_timeout(Duration::from_secs(2))
        .recovery(true)
        .heartbeat_interval(Duration::from_millis(25))
        .suspect_after(suspect_after)
        .on_peer_loss(OnPeerLoss::Degrade)
        // The kill is driven by the doomed rank's put storm crossing the
        // wire; pinned off so a shm CI leg cannot reroute it.
        .shm_plane(Some(false))
        .faults(faults)
        .build()
        .expect("valid config");

    fn fnv(h: u64, w: u64) -> u64 {
        (h ^ w).wrapping_mul(0x100_0000_01b3)
    }

    let out = run_cluster_net_loopback(cfg, move |a| {
        let me = a.rank();
        let my_val = SEED ^ (0xa5a5_0000 + me as u64);
        a.try_barrier().map_err(ChaosError::Op)?;
        let seg = a.malloc(24);
        // Publish this rank's value in its own slot (node-local put).
        a.put_u64(GlobalAddr::new(ProcId(me as u32), seg, 8 * me), my_val);
        if me == 1 {
            // Doomed rank: storm puts at rank 0 until the scripted kill.
            let dst = GlobalAddr::new(ProcId(0), seg, 8);
            for i in 0..10_000u64 {
                a.try_put(dst, &i.to_le_bytes()).map_err(ChaosError::Op)?;
                a.try_fence(ProcId(0)).map_err(ChaosError::Op)?;
            }
            return Err(ChaosError::Invariant("doomed rank outlived its kill".into()));
        }
        // Survivors: watch the failure detector fold the loss into the
        // membership view. No collective traffic is needed — heartbeat
        // silence alone must drive the eviction.
        let start = Instant::now();
        loop {
            let view = a.membership_view();
            if view.epoch > 0 && !view.alive.contains(1) {
                break;
            }
            if start.elapsed() > suspect_after + Duration::from_secs(10) {
                return Err(ChaosError::Invariant("survivor never converged on the eviction".into()));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Rebuild the world group over the survivors and synchronize on
        // it. `group()` is communication-free for flat groups, so the
        // dead member's presence in the input list is harmless.
        let world = a.group(&[0, 1, 2]);
        let shrunk = a.try_shrink_group(&world).map_err(ChaosError::Op)?;
        if shrunk.len() != 2 {
            return Err(ChaosError::Invariant(format!("shrunk group has {} members, want 2", shrunk.len())));
        }
        a.try_barrier_group(&shrunk).map_err(ChaosError::Op)?;
        let converged = start.elapsed();
        // Degraded data plane: cross-put between the survivors, ordered
        // by a second shrunk-group barrier (stage 2 counts only
        // member-initiated puts, so the dead rank's storm cannot skew it).
        let other = if me == 0 { 2usize } else { 0 };
        a.try_put(GlobalAddr::new(ProcId(other as u32), seg, 8 * me), &my_val.to_le_bytes()).map_err(ChaosError::Op)?;
        a.try_barrier_group(&shrunk).map_err(ChaosError::Op)?;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut shadow = digest;
        for r in [0usize, 2] {
            digest = fnv(digest, a.local_segment(seg).read_u64(8 * r));
            shadow = fnv(shadow, SEED ^ (0xa5a5_0000 + r as u64));
        }
        if digest != shadow {
            return Err(ChaosError::Invariant(format!("state digest {digest:#x} != shadow {shadow:#x}")));
        }
        Ok(converged)
    });

    assert_eq!(out.len(), 3);
    assert!(out[1].is_err(), "killed rank must fail, got {:?}", out[1]);
    for rank in [0usize, 2] {
        match &out[rank] {
            Ok(converged) => assert!(
                *converged < budget,
                "rank {rank} took {converged:?} to complete the shrunk-group barrier (budget {budget:?})"
            ),
            Err(e) => panic!("surviving rank {rank} failed: {e}"),
        }
    }
}

/// Acceptance: the same seed must reproduce the same fault schedule
/// byte-for-byte — compared on the serialized launch-payload encoding,
/// not just structural equality.
#[test]
fn same_seed_reproduces_plan_byte_for_byte() {
    for seed in [0u64, 1, SEED, u64::MAX] {
        let a = serde::to_string(&chaos_plan(seed, 4, 16));
        let b = serde::to_string(&chaos_plan(seed, 4, 16));
        assert_eq!(a, b, "seed {seed:#x} did not reproduce its schedule");
    }
    assert_ne!(
        serde::to_string(&chaos_plan(1, 4, 16)),
        serde::to_string(&chaos_plan(2, 4, 16)),
        "distinct seeds collapsed to one schedule"
    );
}
