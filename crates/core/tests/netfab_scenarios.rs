//! The core SPMD scenarios — data operations, locks, non-blocking gets
//! and fences — run over *both* transport backends: the deterministic
//! emulator and netfab loopback TCP (real sockets, frames, reader/writer
//! threads, all nodes as threads of this process — no spawning in unit
//! tests).
//!
//! Every scenario is a plain `fn` so one definition runs under both
//! backends; results must agree wherever the scenario is deterministic.

use armci_core::runtime::{run_cluster, run_cluster_net_loopback};
use armci_core::{run_cluster_spawned, AckMode, Armci, ArmciCfg, GlobalAddr, LockAlgo, LockId, Strided2D};
use armci_transport::{LatencyModel, ProcId};

#[derive(Clone, Copy, Debug)]
enum Backend {
    Emu,
    Tcp,
}

const BOTH: [Backend; 2] = [Backend::Emu, Backend::Tcp];

fn run<T>(backend: Backend, cfg: ArmciCfg, f: fn(&mut Armci) -> T) -> Vec<T>
where
    T: Send + 'static,
{
    match backend {
        Backend::Emu => run_cluster(cfg, f),
        Backend::Tcp => run_cluster_net_loopback(cfg, f),
    }
}

fn zero_lat(nodes: u32) -> ArmciCfg {
    ArmciCfg::flat(nodes, LatencyModel::zero())
}

// ----------------------------------------------------------------------
// data_ops scenarios
// ----------------------------------------------------------------------

fn put_fence_get(a: &mut Armci) -> u64 {
    let seg = a.malloc(64);
    a.barrier();
    let right = ProcId(((a.rank() + 1) % a.nprocs()) as u32);
    a.put_u64(GlobalAddr::new(right, seg, 0), a.rank() as u64 + 100);
    a.barrier();
    a.local_segment(seg).read_u64(0)
}

#[test]
fn put_fence_get_roundtrip_both_backends() {
    for b in BOTH {
        let out = run(b, zero_lat(3), put_fence_get);
        assert_eq!(out, vec![102, 100, 101], "{b:?}");
    }
}

fn barrier_visibility(a: &mut Armci) -> bool {
    let seg = a.malloc(8 * a.nprocs());
    a.barrier();
    for r in 0..a.nprocs() {
        a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 7);
    }
    a.barrier();
    let mine = a.local_segment(seg);
    (0..a.nprocs()).all(|r| mine.read_u64(8 * r) == 7)
}

#[test]
fn barrier_makes_all_pairs_visible_both_backends() {
    for b in BOTH {
        assert!(run(b, zero_lat(4), barrier_visibility).into_iter().all(|ok| ok), "{b:?}");
    }
}

fn strided_and_vector(a: &mut Armci) -> bool {
    let seg = a.malloc(1024);
    a.barrier();
    if a.rank() == 0 {
        let desc = Strided2D { offset: 64, rows: 4, row_bytes: 8, stride: 32 };
        let data: Vec<u8> = (0..32).collect();
        a.put_strided(ProcId(1), seg, desc, &data);
        a.fence(ProcId(1));
        assert_eq!(a.get_strided(ProcId(1), seg, desc), data);

        let runs = [(512u64, 4u32), (600, 8), (700, 2)];
        let vdata: Vec<u8> = (0..14).map(|i| i ^ 0x5A).collect();
        a.put_vector(ProcId(1), seg, &runs, &vdata);
        a.fence(ProcId(1));
        assert_eq!(a.get_vector(ProcId(1), seg, &runs), vdata);
    }
    a.barrier();
    true
}

#[test]
fn strided_and_vector_roundtrip_both_backends() {
    for b in BOTH {
        assert!(run(b, zero_lat(2), strided_and_vector).into_iter().all(|ok| ok), "{b:?}");
    }
}

fn acc_scaled(a: &mut Armci) -> f64 {
    let seg = a.malloc(64);
    a.barrier();
    let scale = (a.rank() + 1) as f64;
    a.acc_f64(GlobalAddr::new(ProcId(0), seg, 0), scale, &[1.0, 2.0]);
    a.barrier();
    let total = if a.rank() == 0 { f64::from_bits(a.local_segment(seg).read_u64(8)) } else { 0.0 };
    a.barrier();
    total
}

#[test]
fn accumulate_sums_both_backends() {
    for b in BOTH {
        let out = run(b, zero_lat(4), acc_scaled);
        // 2.0 * (1+2+3+4)
        assert_eq!(out[0], 20.0, "{b:?}");
    }
}

fn ticket_permutation(a: &mut Armci) -> u64 {
    let seg = a.malloc(8);
    a.barrier();
    let t = a.fetch_add_u64(GlobalAddr::new(ProcId(0), seg, 0), 1);
    a.barrier();
    t
}

#[test]
fn fetch_add_tickets_unique_both_backends() {
    for b in BOTH {
        let mut tickets = run(b, zero_lat(5), ticket_permutation);
        tickets.sort_unstable();
        assert_eq!(tickets, (0..5).collect::<Vec<u64>>(), "{b:?}");
    }
}

fn cas_winner(a: &mut Armci) -> bool {
    let seg = a.malloc(8);
    a.barrier();
    let observed = a.cas_u64(GlobalAddr::new(ProcId(0), seg, 0), 0, a.rank() as u64 + 1);
    a.barrier();
    observed == 0
}

#[test]
fn cas_single_winner_both_backends() {
    for b in BOTH {
        let out = run(b, zero_lat(4), cas_winner);
        assert_eq!(out.into_iter().filter(|&w| w).count(), 1, "{b:?}");
    }
}

fn via_put_fence(a: &mut Armci) -> bool {
    let seg = a.malloc(16);
    a.barrier();
    if a.rank() == 0 {
        a.put_u64(GlobalAddr::new(ProcId(1), seg, 0), 4242);
        a.fence(ProcId(1)); // VIA mode: drains acks instead of round-trip
    }
    a.barrier();
    a.rank() != 1 || a.local_segment(seg).read_u64(0) == 4242
}

#[test]
fn via_ack_mode_fence_both_backends() {
    for b in BOTH {
        let cfg = zero_lat(2).with_ack_mode(AckMode::Via);
        assert!(run(b, cfg, via_put_fence).into_iter().all(|ok| ok), "{b:?}");
    }
}

// ----------------------------------------------------------------------
// locks scenarios
// ----------------------------------------------------------------------

fn lock_torture(a: &mut Armci) -> u64 {
    const ITERS: u64 = 15;
    let seg = a.malloc(16);
    let lock = LockId { owner: ProcId(0), idx: 0 };
    let counter = GlobalAddr::new(ProcId(0), seg, 0);
    a.barrier();
    for _ in 0..ITERS {
        a.lock(lock);
        // Deliberately non-atomic increment: lost updates prove a broken
        // lock.
        let mut buf = [0u8; 8];
        a.get(counter, &mut buf);
        let v = u64::from_le_bytes(buf) + 1;
        a.put(counter, &v.to_le_bytes());
        a.fence(ProcId(0));
        a.unlock(lock);
    }
    a.barrier();
    let mut buf = [0u8; 8];
    a.get(counter, &mut buf);
    u64::from_le_bytes(buf)
}

#[test]
fn mcs_mutual_exclusion_both_backends() {
    for b in BOTH {
        let cfg = ArmciCfg {
            nodes: 2,
            procs_per_node: 2,
            latency: LatencyModel::zero(),
            lock_algo: LockAlgo::Mcs,
            ..Default::default()
        };
        let out = run(b, cfg, lock_torture);
        assert!(out.into_iter().all(|v| v == 4 * 15), "{b:?}: lost updates");
    }
}

#[test]
fn hybrid_mutual_exclusion_both_backends() {
    for b in BOTH {
        let cfg = zero_lat(3).with_lock_algo(LockAlgo::Hybrid);
        let out = run(b, cfg, lock_torture);
        assert!(out.into_iter().all(|v| v == 3 * 15), "{b:?}: lost updates");
    }
}

// ----------------------------------------------------------------------
// nb_and_fence scenarios
// ----------------------------------------------------------------------

fn nbget_overlap(a: &mut Armci) -> bool {
    let seg = a.malloc(64);
    a.local_segment(seg).write_u64(0, a.rank() as u64 * 11);
    a.barrier();
    if a.rank() == 0 {
        let hs: Vec<_> = (1..a.nprocs()).map(|p| a.nbget(GlobalAddr::new(ProcId(p as u32), seg, 0), 8)).collect();
        for (i, h) in hs.into_iter().enumerate() {
            let v = u64::from_le_bytes(a.nbget_wait(h).try_into().unwrap());
            assert_eq!(v, (i as u64 + 1) * 11);
        }
    }
    a.barrier();
    true
}

#[test]
fn nbget_overlap_both_backends() {
    for b in BOTH {
        assert!(run(b, zero_lat(4), nbget_overlap).into_iter().all(|ok| ok), "{b:?}");
    }
}

fn allfence_visibility(a: &mut Armci) -> bool {
    let seg = a.malloc(8 * a.nprocs());
    a.barrier();
    for r in 0..a.nprocs() {
        if r != a.rank() {
            a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 7);
        }
    }
    a.allfence();
    a.barrier();
    let mine = a.local_segment(seg);
    (0..a.nprocs()).filter(|&r| r != a.rank()).all(|r| mine.read_u64(8 * r) == 7)
}

#[test]
fn allfence_then_barrier_both_backends() {
    for b in BOTH {
        assert!(run(b, zero_lat(3), allfence_visibility).into_iter().all(|ok| ok), "{b:?}");
    }
}

// ----------------------------------------------------------------------
// netfab-only checks
// ----------------------------------------------------------------------

/// The wire-count checks below compare *wire* structure between
/// backends, so they pin the shm plane off: under `ARMCI_SHM_PLANE=on`
/// (the shm CI leg) loopback nodes would serve each other through
/// mapped segments and the counts they assert would legitimately drop.
fn wire_pinned(nodes: u32) -> ArmciCfg {
    zero_lat(nodes).with_shm_plane(Some(false))
}

#[test]
fn tcp_wire_counters_populate_stats() {
    let out = run_cluster_net_loopback(wire_pinned(2), |a| {
        let seg = a.malloc(64);
        a.barrier();
        let peer = ProcId(((a.rank() + 1) % 2) as u32);
        a.put_u64(GlobalAddr::new(peer, seg, 0), 1);
        a.fence(peer);
        a.barrier();
        a.stats()
    });
    for s in &out {
        // Every rank crossed the wire: the put/fence traffic and the
        // dissemination barrier all target the other node.
        assert!(s.wire_msgs > 0, "no wire messages recorded: {s:?}");
        assert!(s.wire_bytes > 0, "no wire bytes recorded: {s:?}");
        assert!(s.wire_msgs <= s.total_msgs(), "wire msgs exceed total sends: {s:?}");
    }
}

#[test]
fn emulator_and_tcp_agree_on_wire_message_counts() {
    // The scenario is fully deterministic (sequential phases, no races),
    // so the number of messages each rank puts on the inter-node wire
    // must be identical across backends — the emulator's hop counting
    // and netfab's frame counting measure the same structure.
    let wire_counts = |b: Backend| -> Vec<u64> {
        run(b, wire_pinned(3), |a| {
            let seg = a.malloc(64);
            a.barrier();
            if a.rank() == 0 {
                a.put_u64(GlobalAddr::new(ProcId(1), seg, 0), 5);
                a.fence(ProcId(1));
                let mut buf = [0u8; 8];
                a.get(GlobalAddr::new(ProcId(2), seg, 0), &mut buf);
            }
            a.barrier();
            a.stats().wire_msgs
        })
    };
    assert_eq!(wire_counts(Backend::Emu), wire_counts(Backend::Tcp));
}

#[test]
fn tcp_loopback_trace_matches_emulator_structure() {
    use armci_core::runtime::{run_cluster_net_loopback_traced, run_cluster_traced};
    let mut cfg = wire_pinned(2);
    cfg.trace = true;
    let scenario = |a: &mut Armci| {
        let seg = a.malloc(32);
        a.barrier();
        if a.rank() == 0 {
            a.put_u64(GlobalAddr::new(ProcId(1), seg, 0), 9);
            a.fence(ProcId(1));
        }
        a.barrier();
    };
    let (_, emu) = run_cluster_traced(cfg.clone(), scenario);
    let (_, tcp) = run_cluster_net_loopback_traced(cfg, scenario);
    let emu = emu.expect("emulator trace");
    let tcp = tcp.expect("tcp trace");
    // Identical per-(src, dst, tag) message multisets: the scenario is
    // deterministic, only timing differs between backends.
    let ep_key = |e: armci_transport::Endpoint| match e {
        armci_transport::Endpoint::Proc(p) => (0u8, p.0),
        armci_transport::Endpoint::Server(n) => (1, n.0),
        armci_transport::Endpoint::Nic(n) => (2, n.0),
    };
    let key = |t: &armci_transport::Trace| {
        let mut v: Vec<_> = t.snapshot().iter().map(|e| (ep_key(e.src), ep_key(e.dst), e.tag.0, e.size)).collect();
        v.sort();
        v
    };
    assert_eq!(key(&emu), key(&tcp));
}

// ----------------------------------------------------------------------
// shm data plane: two ranks, one host, separate OS processes
// ----------------------------------------------------------------------

/// The probe both shm-plane runs execute: one-sided put/get/rmw at the
/// other process, then an MCS lock ping-pong, with the wire-message
/// delta measured across the whole contention region (no barriers
/// inside it). Each rank ships its delta to rank 0 so node 0's result
/// carries both.
///
/// Returns `(echoed, ticket, counter, delta_rank0, delta_rank1)`; the
/// first three are the data results and must be identical whether the
/// ops rode the shm plane or the wire.
fn shm_probe(a: &mut Armci) -> (u64, u64, u64, u64, u64) {
    let seg = a.malloc(256);
    let lock = LockId { owner: ProcId(0), idx: 0 };
    let me = a.rank() as u64;
    let peer = ProcId(((a.rank() + 1) % 2) as u32);
    a.barrier();

    let wire_before = a.stats().wire_msgs;
    // Direct one-sided data ops against the other process's segment.
    a.put_u64(GlobalAddr::new(peer, seg, 8 * a.rank()), me + 0xA0);
    let ticket = a.fetch_add_u64(GlobalAddr::new(peer, seg, 64), me + 1);
    let echoed = a.get_u64(GlobalAddr::new(peer, seg, 8 * a.rank()));
    // MCS lock handoff between the two processes: a deliberately
    // non-atomic increment under the lock proves mutual exclusion.
    let ctr = GlobalAddr::new(ProcId(0), seg, 128);
    for _ in 0..5 {
        a.lock(lock);
        let v = a.get_u64(ctr);
        a.put_u64(ctr, v + 1);
        a.fence(ProcId(0));
        a.unlock(lock);
    }
    let wire_delta = a.stats().wire_msgs - wire_before;

    a.barrier();
    // +1 so a genuine zero delta is distinguishable from an unwritten slot.
    a.put_u64(GlobalAddr::new(ProcId(0), seg, 160 + 8 * a.rank()), wire_delta + 1);
    a.barrier();
    let counter = a.get_u64(ctr);
    a.barrier();
    if a.rank() == 0 {
        let mine = a.local_segment(seg);
        (echoed, ticket, counter, mine.read_u64(160) - 1, mine.read_u64(168) - 1)
    } else {
        (echoed, ticket, counter, 0, 0)
    }
}

/// The single `run_cluster_spawned` call site of this binary: children
/// re-enter `shm_plane_spawned_zero_wire` with an `--exact` filter, land
/// here, and take their cluster config from the environment payload —
/// so the parent can invoke it for both the shm-on and shm-off runs.
fn run_shm_probe(shm_on: bool) -> (u64, u64, u64, u64, u64) {
    let cfg = ArmciCfg {
        nodes: 2,
        procs_per_node: 1,
        latency: LatencyModel::zero(),
        lock_algo: LockAlgo::Mcs,
        shm_plane: Some(shm_on),
        ..Default::default()
    };
    let child_args: Vec<String> =
        ["shm_plane_spawned_zero_wire", "--exact", "--test-threads=1"].iter().map(|s| s.to_string()).collect();
    run_cluster_spawned(cfg, &child_args, shm_probe)[0]
}

#[test]
#[cfg(unix)]
fn shm_plane_spawned_zero_wire() {
    // Two OS processes on this host, with the shm plane on and off.
    let on = run_shm_probe(true);
    let off = run_shm_probe(false);
    // Identical data results either way — the plane changes the route,
    // never the bytes.
    assert_eq!((on.0, on.1, on.2), (off.0, off.1, off.2), "shm and wire paths disagree: {on:?} vs {off:?}");
    assert_eq!((on.0, on.1, on.2), (0xA0, 0, 10));
    // With the plane on, the whole put/get/rmw + MCS-lock region crossed
    // the wire exactly zero times in *both* processes...
    assert_eq!((on.3, on.4), (0, 0), "local-target ops sent wire messages with shm plane on: {on:?}");
    // ...and with it off, the same region demonstrably used the wire.
    assert!(off.3 > 0 && off.4 > 0, "wire run produced no wire traffic to compare against: {off:?}");
}
