//! Multi-process degraded-mode acceptance test: four single-process
//! nodes, one of which is scripted to abort mid-run (the spawned-mode
//! `kill -9` equivalent — no flush, no teardown). Under
//! `OnPeerLoss::Degrade` the three survivors must converge on the
//! post-eviction membership view, rebuild the world group over the
//! survivor set, and complete shrunk-group barriers within twice the
//! suspect window — rank 0's barriers completing certifies the spawned
//! survivors participated, and a cross-put exchange proves the degraded
//! data plane still moves bytes correctly.
//!
//! Kept to exactly one test function so the spawned children's libtest
//! filter can never match anything else (see `netfab_spawn.rs`).

use std::time::{Duration, Instant};

use armci_core::{
    run_cluster_spawned_result, Armci, ArmciCfg, FaultAction, FaultPlan, FaultSpec, GlobalAddr, LockAlgo, OnPeerLoss,
};
use armci_transport::{LatencyModel, ProcId};

const SUSPECT_AFTER: Duration = Duration::from_millis(1500);
const SURVIVORS: [usize; 3] = [0, 2, 3];

fn val(r: usize) -> u64 {
    0x5eed_0000_0000 + r as u64
}

fn degrade_workload(a: &mut Armci) -> Result<Duration, String> {
    let me = a.rank();
    a.try_barrier().map_err(|e| format!("initial barrier: {e}"))?;
    let seg = a.malloc(8 * 4);
    // Publish this rank's value in its own slot (node-local put).
    a.put_u64(GlobalAddr::new(ProcId(me as u32), seg, 8 * me), val(me));
    if me == 1 {
        // Doomed rank: storm puts at rank 0 until the scripted kill
        // aborts this process.
        let dst = GlobalAddr::new(ProcId(0), seg, 8);
        for i in 0..100_000u64 {
            a.try_put(dst, &i.to_le_bytes()).map_err(|e| format!("storm put: {e}"))?;
            a.try_fence(ProcId(0)).map_err(|e| format!("storm fence: {e}"))?;
        }
        return Err("doomed rank outlived its kill".into());
    }
    // Survivors: heartbeat silence alone must fold the eviction into the
    // membership view — no collective traffic drives the detection.
    let start = Instant::now();
    loop {
        let view = a.membership_view();
        if view.epoch > 0 && !view.alive.contains(1) {
            break;
        }
        if start.elapsed() > SUSPECT_AFTER + Duration::from_secs(10) {
            return Err("survivor never converged on the eviction".into());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Rebuild the world group over the survivors (communication-free for
    // flat groups) and synchronize on it.
    let world = a.group(&[0, 1, 2, 3]);
    let shrunk = a.try_shrink_group(&world).map_err(|e| format!("shrink: {e}"))?;
    if shrunk.len() != SURVIVORS.len() {
        return Err(format!("shrunk group has {} members, want {}", shrunk.len(), SURVIVORS.len()));
    }
    a.try_barrier_group(&shrunk).map_err(|e| format!("shrunk barrier: {e}"))?;
    let converged = start.elapsed();
    // Degraded data plane: every survivor publishes its value to every
    // other survivor; the second shrunk barrier orders the puts (stage 2
    // counts only member-initiated puts, so the dead rank's storm cannot
    // skew it).
    for &r in SURVIVORS.iter().filter(|&&r| r != me) {
        a.try_put(GlobalAddr::new(ProcId(r as u32), seg, 8 * me), &val(me).to_le_bytes())
            .map_err(|e| format!("survivor put to {r}: {e}"))?;
    }
    a.try_barrier_group(&shrunk).map_err(|e| format!("ordering barrier: {e}"))?;
    for &r in &SURVIVORS {
        let got = a.local_segment(seg).read_u64(8 * r);
        if got != val(r) {
            return Err(format!("slot {r}: got {got:#x}, want {:#x}", val(r)));
        }
    }
    Ok(converged)
}

#[test]
fn spawned_node_kill_under_degrade() {
    let faults = FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 40, action: FaultAction::KillNode });
    let cfg = ArmciCfg::builder()
        .nodes(4)
        .procs_per_node(1)
        .latency(LatencyModel::zero())
        .lock_algo(LockAlgo::Mcs)
        .op_timeout(Duration::from_secs(2))
        .recovery(true)
        .heartbeat_interval(Duration::from_millis(25))
        .suspect_after(SUSPECT_AFTER)
        .on_peer_loss(OnPeerLoss::Degrade)
        // The kill counts wire frames, so the storm must ride the wire.
        .shm_plane(Some(false))
        .faults(faults)
        .build()
        .expect("valid config");
    let child_args: Vec<String> =
        ["spawned_node_kill_under_degrade", "--exact", "--test-threads=1"].iter().map(|s| s.to_string()).collect();

    let (out, verdict) = run_cluster_spawned_result(cfg, &child_args, degrade_workload);

    // Node 0 hosts exactly rank 0; its shrunk-group barriers completing
    // certifies ranks 2 and 3 (spawned children) participated too.
    assert_eq!(out.len(), 1);
    match &out[0] {
        Ok(converged) => assert!(
            *converged < 2 * SUSPECT_AFTER,
            "rank 0 took {converged:?} to complete the shrunk-group barrier (budget {:?})",
            2 * SUSPECT_AFTER
        ),
        Err(e) => panic!("rank 0 failed: {e}"),
    }
    // The killed child exits abnormally, so the run verdict must report
    // a node-process failure — survivors finishing does not mask it.
    assert!(verdict.is_err(), "kill must surface in the spawned-run verdict, got {verdict:?}");
}
