//! Integration tests for one-sided data movement: put/get (contiguous and
//! strided), accumulate, and read-modify-write, across local and remote
//! destinations and both ack modes.

use armci_core::Strided2D;
use armci_core::{run_cluster, AckMode, ArmciCfg, ArmciCfg as Cfg, GlobalAddr, RmwOp};
use armci_transport::{LatencyModel, ProcId};

fn zero_lat(nodes: u32) -> ArmciCfg {
    Cfg::flat(nodes, LatencyModel::zero())
}

#[test]
fn put_then_fence_then_remote_get() {
    let out = run_cluster(zero_lat(3), |a| {
        let seg = a.malloc(256);
        let right = ProcId(((a.rank() + 1) % a.nprocs()) as u32);
        let payload: Vec<u8> = (0..64).map(|i| (a.rank() * 64 + i) as u8).collect();
        a.put(GlobalAddr::new(right, seg, 16), &payload);
        a.fence(right);
        a.barrier();
        // Read back what the left neighbour deposited into us, remotely via
        // our own server? No — read someone else's memory: the slot we wrote.
        let mut got = vec![0u8; 64];
        a.get(GlobalAddr::new(right, seg, 16), &mut got);
        got == payload
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn put_visibility_after_barrier_all_pairs() {
    // Every process writes its rank into every other process's segment;
    // after ARMCI_Barrier everyone must see all writes.
    for nodes in [2u32, 4, 5] {
        let out = run_cluster(zero_lat(nodes), move |a| {
            let n = a.nprocs();
            let seg = a.malloc(8 * n);
            for r in 0..n {
                a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 1000 + a.rank() as u64);
            }
            a.barrier();
            let mine = a.local_segment(seg);
            (0..n).all(|r| mine.read_u64(8 * r) == 1000 + r as u64)
        });
        assert!(out.into_iter().all(|ok| ok), "nodes={nodes}");
    }
}

#[test]
fn via_mode_fence_waits_for_acks() {
    let cfg = zero_lat(4).with_ack_mode(AckMode::Via);
    let out = run_cluster(cfg, |a| {
        let seg = a.malloc(64);
        for r in 0..a.nprocs() {
            if r != a.rank() {
                a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 7);
            }
        }
        a.allfence();
        a.barrier();
        let mine = a.local_segment(seg);
        (0..a.nprocs()).filter(|&r| r != a.rank()).all(|r| mine.read_u64(8 * r) == 7)
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn strided_put_and_get_roundtrip() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(1024);
        if a.rank() == 0 {
            // 4 rows of 8 bytes, stride 32, into rank 1.
            let desc = Strided2D { offset: 64, rows: 4, row_bytes: 8, stride: 32 };
            let data: Vec<u8> = (0..32).collect();
            a.put_strided(ProcId(1), seg, desc, &data);
            a.fence(ProcId(1));
            let back = a.get_strided(ProcId(1), seg, desc);
            assert_eq!(back, data);
            // Check the gaps were untouched (still zero).
            let mut gap = vec![0u8; 8];
            a.get(GlobalAddr::new(ProcId(1), seg, 64 + 8), &mut gap);
            assert_eq!(gap, vec![0u8; 8]);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn strided_local_fast_path_matches_remote() {
    let out = run_cluster(zero_lat(1).with_procs_per_node(2), |a| {
        let seg = a.malloc(512);
        let desc = Strided2D { offset: 0, rows: 3, row_bytes: 16, stride: 64 };
        if a.rank() == 0 {
            let data: Vec<u8> = (0..48).map(|i| i as u8 ^ 0x5A).collect();
            // Rank 1 shares our node: this exercises the local path.
            a.put_strided(ProcId(1), seg, desc, &data);
            let back = a.get_strided(ProcId(1), seg, desc);
            assert_eq!(back, data);
            assert_eq!(a.stats().local_puts, 1);
            assert_eq!(a.stats().remote_puts, 0);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn accumulate_sums_atomically_across_ranks() {
    let out = run_cluster(zero_lat(4), |a| {
        let seg = a.malloc(64);
        // Everyone accumulates [1.0, 2.0] scaled by (rank+1) into rank 0.
        let scale = (a.rank() + 1) as f64;
        a.acc_f64(GlobalAddr::new(ProcId(0), seg, 0), scale, &[1.0, 2.0]);
        a.barrier();
        if a.rank() == 0 {
            let s = a.local_segment(seg);
            let total_scale: f64 = (1..=4).map(|x| x as f64).sum(); // 10
            assert_eq!(f64::from_bits(s.read_u64(0)), total_scale);
            assert_eq!(f64::from_bits(s.read_u64(8)), 2.0 * total_scale);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn fetch_add_generates_unique_tickets() {
    // The ARMCI fetch-and-increment: all ranks pull tickets from rank 0's
    // counter; tickets must be a permutation of 0..n.
    let out = run_cluster(zero_lat(6), |a| {
        let seg = a.malloc(8);
        a.barrier();
        let t = a.fetch_add_u64(GlobalAddr::new(ProcId(0), seg, 0), 1);
        a.barrier();
        t
    });
    let mut tickets = out;
    tickets.sort_unstable();
    assert_eq!(tickets, (0..6).collect::<Vec<u64>>());
}

#[test]
fn cas_succeeds_exactly_once() {
    let out = run_cluster(zero_lat(5), |a| {
        let seg = a.malloc(8);
        a.barrier();
        let observed = a.cas_u64(GlobalAddr::new(ProcId(0), seg, 0), 0, a.rank() as u64 + 1);
        a.barrier();
        observed == 0 // true for the single winner
    });
    assert_eq!(out.into_iter().filter(|&w| w).count(), 1);
}

#[test]
fn pair_ops_roundtrip_remote() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(64);
        a.barrier();
        if a.rank() == 1 {
            let addr = GlobalAddr::new(ProcId(0), seg, 16);
            assert_eq!(a.pair_swap(addr, [11, 22]), [0, 0]);
            assert_eq!(a.pair_cas(addr, [11, 22], [33, 44]), [11, 22]);
            assert_eq!(a.pair_cas(addr, [99, 99], [0, 0]), [33, 44], "failed CAS reports observed");
            a.put_pair(addr, [55, 66]);
            a.fence(ProcId(0));
        }
        a.barrier();
        if a.rank() == 0 {
            assert_eq!(a.local_segment(seg).pair_read(16), [55, 66]);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn rmw_signed_fetch_add() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(8);
        a.barrier();
        if a.rank() == 1 {
            let addr = GlobalAddr::new(ProcId(0), seg, 0);
            assert_eq!(a.fetch_add_i64(addr, -5), 0);
            assert_eq!(a.fetch_add_i64(addr, 2), -5);
            assert_eq!(a.rmw(addr, RmwOp::FetchAddI64(3))[0] as i64, -3);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn typed_helpers_roundtrip() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(256);
        a.barrier();
        if a.rank() == 0 {
            let base = GlobalAddr::new(ProcId(1), seg, 0);
            a.put_f64(base, -2.5);
            a.put_u64(base.add(8), u64::MAX - 3);
            a.put_f64_slice(base.add(16), &[1.0, 2.0, 3.0]);
            a.put_u64_slice(base.add(48), &[7, 8]);
            a.fence(ProcId(1));
            assert_eq!(a.get_f64(base), -2.5);
            assert_eq!(a.get_u64(base.add(8)), u64::MAX - 3);
            assert_eq!(a.get_f64_slice(base.add(16), 3), vec![1.0, 2.0, 3.0]);
            assert_eq!(a.get_u64_slice(base.add(48), 2), vec![7, 8]);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn local_ops_bypass_server_entirely() {
    let out = run_cluster(zero_lat(1).with_procs_per_node(2), |a| {
        let seg = a.malloc(64);
        let peer = ProcId((1 - a.rank()) as u32);
        a.put_u64(GlobalAddr::new(peer, seg, 0), 42);
        let mut buf = [0u8; 8];
        a.get(GlobalAddr::new(peer, seg, 0), &mut buf);
        let st = a.stats();
        a.barrier();
        st.server_msgs == 0 && st.local_puts == 1 && st.local_gets == 1
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn gm_fence_skips_untouched_servers() {
    let out = run_cluster(zero_lat(4), |a| {
        let seg = a.malloc(64);
        a.barrier();
        if a.rank() == 0 {
            // Touch only rank 1.
            a.put_u64(GlobalAddr::new(ProcId(1), seg, 0), 1);
            let before = a.stats().fence_roundtrips;
            a.allfence();
            let after = a.stats().fence_roundtrips;
            assert_eq!(after - before, 1, "only the touched server needs a confirmation");
            // A second allfence with nothing outstanding is free.
            a.allfence();
            assert_eq!(a.stats().fence_roundtrips, after);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn sync_baseline_and_barrier_are_interchangeable() {
    // Semantics check: the baseline (allfence + MPI barrier) and the new
    // combined barrier both make all prior puts globally visible.
    for use_new in [false, true] {
        let out = run_cluster(zero_lat(4), move |a| {
            let seg = a.malloc(8 * a.nprocs());
            for r in 0..a.nprocs() {
                a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), a.rank() as u64 + 1);
            }
            if use_new {
                a.barrier();
            } else {
                a.sync_baseline();
            }
            let mine = a.local_segment(seg);
            (0..a.nprocs()).all(|r| mine.read_u64(8 * r) == r as u64 + 1)
        });
        assert!(out.into_iter().all(|ok| ok), "use_new={use_new}");
    }
}

#[test]
fn repeated_barriers_with_traffic_between() {
    let out = run_cluster(zero_lat(3), |a| {
        let seg = a.malloc(8);
        for round in 0..20u64 {
            let target = ProcId(((a.rank() + 1) % a.nprocs()) as u32);
            a.put_u64(GlobalAddr::new(target, seg, 0), round);
            a.barrier();
            let v = a.local_segment(seg).read_u64(0);
            assert_eq!(v, round, "round {round} not globally visible");
            a.barrier();
        }
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn smp_mixed_local_remote_barrier() {
    // 2 nodes x 2 procs: puts cross both shared memory and the network.
    let cfg = ArmciCfg { nodes: 2, procs_per_node: 2, latency: LatencyModel::zero(), ..Default::default() };
    let out = run_cluster(cfg, |a| {
        let n = a.nprocs();
        let seg = a.malloc(8 * n);
        for r in 0..n {
            a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), (a.rank() * 10 + r) as u64);
        }
        a.barrier();
        let mine = a.local_segment(seg);
        (0..n).all(|r| mine.read_u64(8 * r) == (r * 10 + a.rank()) as u64)
    });
    assert!(out.into_iter().all(|ok| ok));
}
