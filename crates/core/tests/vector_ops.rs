//! Integration tests for the generalized I/O-vector operations
//! (`ARMCI_PutV`/`ARMCI_GetV`).

use armci_core::{run_cluster, ArmciCfg};
use armci_transport::{LatencyModel, ProcId};

fn zero_lat(nodes: u32) -> ArmciCfg {
    ArmciCfg::flat(nodes, LatencyModel::zero())
}

#[test]
fn put_vector_scatters_runs() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(256);
        if a.rank() == 0 {
            // Three disjoint runs of different sizes.
            let runs = [(8u64, 4u32), (64, 8), (200, 2)];
            let data: Vec<u8> = (1..=14).collect(); // 4 + 8 + 2
            a.put_vector(ProcId(1), seg, &runs, &data);
            a.fence(ProcId(1));
            // Gather them back plus a gap byte that must still be zero.
            let got = a.get_vector(ProcId(1), seg, &[(8, 4), (64, 8), (200, 2), (12, 1)]);
            assert_eq!(&got[..14], &data[..]);
            assert_eq!(got[14], 0, "gap byte must be untouched");
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn vector_ops_local_fast_path() {
    let out = run_cluster(zero_lat(1).with_procs_per_node(2), |a| {
        let seg = a.malloc(128);
        a.barrier();
        if a.rank() == 0 {
            let runs = [(0u64, 8u32), (32, 8)];
            a.put_vector(ProcId(1), seg, &runs, &[0xAB; 16]);
            let got = a.get_vector(ProcId(1), seg, &runs);
            assert_eq!(got, vec![0xAB; 16]);
            assert_eq!(a.stats().server_msgs, 0, "local vector ops bypass the server");
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn vector_put_counts_as_one_message_for_fencing() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(4096);
        a.barrier();
        if a.rank() == 0 {
            let before = a.stats();
            // 16 runs in one vector put = one message, one fence op.
            let runs: Vec<(u64, u32)> = (0..16).map(|i| (i * 256, 16)).collect();
            a.put_vector(ProcId(1), seg, &runs, &vec![7u8; 256]);
            let after = a.stats();
            assert_eq!(after.server_msgs - before.server_msgs, 1);
            assert_eq!(after.remote_puts - before.remote_puts, 1);
            a.fence(ProcId(1));
            let got = a.get_vector(ProcId(1), seg, &runs);
            assert_eq!(got, vec![7u8; 256]);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn empty_and_single_byte_runs() {
    let out = run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(64);
        a.barrier();
        if a.rank() == 1 {
            a.put_vector(ProcId(0), seg, &[], &[]);
            a.put_vector(ProcId(0), seg, &[(63, 1)], &[0xEE]);
            a.fence(ProcId(0));
            let got = a.get_vector(ProcId(0), seg, &[(63, 1)]);
            assert_eq!(got, vec![0xEE]);
            assert!(a.get_vector(ProcId(0), seg, &[]).is_empty());
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
#[should_panic]
fn mismatched_payload_rejected() {
    run_cluster(zero_lat(2), |a| {
        let seg = a.malloc(64);
        a.put_vector(ProcId((a.rank() as u32 + 1) % 2), seg, &[(0, 8)], &[1, 2, 3]);
    });
}
