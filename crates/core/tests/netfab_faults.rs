//! Fault-plane integration tests: scripted netfab faults must surface as
//! `ArmciError` values from the `try_*` API — no hang, no panic — while
//! tolerable faults (a stalled writer, a few failed dials) must not
//! disturb the run at all.
//!
//! `kill_one_node_mid_barrier` re-executes this test binary once per
//! extra node (`run_cluster_spawned_result`); the child processes re-enter
//! the libtest harness with `["kill_one_node_mid_barrier", "--exact"]` as
//! argv, which routes them straight back to that single test and nowhere
//! else. Every other test here is loopback-only and never spawns.

use std::time::{Duration, Instant};

use armci_core::{
    run_cluster_net_loopback, run_cluster_spawned_result, Armci, ArmciCfg, ArmciError, FaultAction, FaultPlan,
    FaultSpec,
};
use armci_transport::LatencyModel;

fn faulty_cfg(op_timeout: Duration, faults: FaultPlan) -> ArmciCfg {
    ArmciCfg::builder()
        .nodes(2)
        .procs_per_node(1)
        .latency(LatencyModel::zero())
        .op_timeout(op_timeout)
        // These tests assert that *wire* faults surface as errors; the
        // shm plane would legitimately route around a dead link, so it
        // stays off regardless of `ARMCI_SHM_PLANE`.
        .shm_plane(Some(false))
        .faults(faults)
        .build()
        .expect("valid config")
}

fn try_barrier_once(a: &mut Armci) -> Result<(), ArmciError> {
    a.try_barrier()
}

/// The acceptance scenario: one spawned node process is hard-killed (the
/// fault plane aborts it before its first frame to node 0, equivalent to
/// an external `kill -9` mid-barrier). Every surviving rank must get an
/// `Err(PeerLost)` well within 2x the configured operation deadline, the
/// run verdict must be a failure, and no child process may be left behind
/// (`run_cluster_spawned_result` reaps survivors before returning).
#[test]
fn kill_one_node_mid_barrier() {
    let op_timeout = Duration::from_secs(3);
    let faults = FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 0, action: FaultAction::KillNode });
    let cfg = faulty_cfg(op_timeout, faults);
    let child_args: Vec<String> =
        ["kill_one_node_mid_barrier", "--exact", "--test-threads=1"].iter().map(|s| s.to_string()).collect();

    let start = Instant::now();
    let (out, verdict) = run_cluster_spawned_result(cfg, &child_args, try_barrier_once);
    let elapsed = start.elapsed();

    // This process hosts node 0 = rank 0; node 1 aborted in its child.
    assert_eq!(out.len(), 1);
    assert!(matches!(out[0], Err(ArmciError::PeerLost { .. })), "rank 0 got {:?}", out[0]);
    assert!(verdict.is_err(), "a killed node process must fail the run verdict");
    assert!(elapsed < 2 * op_timeout, "failure took {elapsed:?}, budget {:?}", 2 * op_timeout);
}

/// A connection reset severs the pair link abruptly: both ranks' barriers
/// must fail (peer-lost or deadline), neither may hang or panic.
#[test]
fn reset_conn_fails_both_ranks() {
    let op_timeout = Duration::from_secs(2);
    let faults = FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 0, action: FaultAction::ResetConn });
    let start = Instant::now();
    let out = run_cluster_net_loopback(faulty_cfg(op_timeout, faults), try_barrier_once);
    let elapsed = start.elapsed();

    assert_eq!(out.len(), 2);
    for (rank, r) in out.iter().enumerate() {
        assert!(r.is_err(), "rank {rank} should have failed, got {r:?}");
    }
    assert!(elapsed < 3 * op_timeout, "failure took {elapsed:?}");
}

/// A mid-frame EOF (crashed writer signature) must poison the peer rather
/// than panic the reader thread; the victim's barrier fails cleanly.
#[test]
fn truncated_frame_poisons_peer() {
    let op_timeout = Duration::from_secs(2);
    let faults =
        FaultPlan::new().with(FaultSpec { node: 1, peer: 0, after_frames: 0, action: FaultAction::TruncateFrame });
    let out = run_cluster_net_loopback(faulty_cfg(op_timeout, faults), try_barrier_once);

    assert_eq!(out.len(), 2);
    assert!(matches!(out[0], Err(ArmciError::PeerLost { .. })), "rank 0 got {:?}", out[0]);
    assert!(out[1].is_err(), "rank 1 should have failed, got {:?}", out[1]);
}

/// A 200ms writer stall is far inside a generous deadline: the run must
/// complete successfully — slowness alone is not failure.
#[test]
fn stalled_writer_is_tolerated() {
    let faults = FaultPlan::new().with(FaultSpec {
        node: 1,
        peer: 0,
        after_frames: 0,
        action: FaultAction::StallWriter { millis: 200 },
    });
    let out = run_cluster_net_loopback(faulty_cfg(Duration::from_secs(30), faults), try_barrier_once);
    assert_eq!(out, vec![Ok(()), Ok(())]);
}

/// Two artificial dial failures during bootstrap are absorbed by the
/// dialer's retry/backoff (8 attempts by default): the run boots and the
/// barrier completes as if nothing happened.
#[test]
fn dial_failures_absorbed_by_retry() {
    let faults = FaultPlan::new().with(FaultSpec {
        node: 1,
        peer: 0,
        after_frames: 0,
        action: FaultAction::DialFail { times: 2 },
    });
    let out = run_cluster_net_loopback(faulty_cfg(Duration::from_secs(30), faults), try_barrier_once);
    assert_eq!(out, vec![Ok(()), Ok(())]);
}
