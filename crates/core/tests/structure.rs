//! Structural verification via message traces: the paper's claims are
//! message-count claims, so we count actual messages on the wire.

use armci_core::runtime::run_cluster_traced;
use armci_core::{ArmciCfg, GlobalAddr, LockAlgo, LockId};
use armci_transport::{Endpoint, LatencyModel, ProcId, Tag};

fn traced_cfg(nodes: u32) -> ArmciCfg {
    let mut c = ArmciCfg::flat(nodes, LatencyModel::zero());
    c.trace = true;
    c
}

/// Per-process message cost of one combined `ARMCI_Barrier()` (no puts
/// outstanding): stage 1 allreduce log2(N) + stage 3 barrier log2(N).
#[test]
fn armci_barrier_sends_2logn_messages_per_proc() {
    for n in [2usize, 4, 8, 16] {
        let (_, trace) = run_cluster_traced(traced_cfg(n as u32), |a| {
            a.barrier();
        });
        let trace = trace.unwrap();
        // Total = the measured barrier + the runtime's teardown barrier
        // (identical structure) + rank 0's shutdown messages to servers.
        let logn = n.trailing_zeros() as u64;
        // Proc-to-proc traffic only (excludes rank 0's shutdown requests
        // to the servers at teardown).
        let proc_msgs: u64 =
            trace.snapshot().iter().filter(|e| !e.src.is_server() && !e.dst.is_server()).count() as u64;
        assert_eq!(proc_msgs, 2 * (n as u64) * (2 * logn), "n={n}: two combined barriers at 2*log2(n) msgs/proc each");
    }
}

/// The baseline costs 2(N-1) fence legs per process on top of the
/// barrier; count the fence requests alone.
#[test]
fn allfence_sends_one_request_per_touched_server() {
    for n in [4usize, 8] {
        let (_, trace) = run_cluster_traced(traced_cfg(n as u32), |a| {
            let seg = a.malloc(8 * a.nprocs());
            for r in 0..a.nprocs() {
                a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 1);
            }
            a.allfence();
            armci_msglib::Group::world(a.nprocs()).barrier_binary_exchange(a);
        });
        let trace = trace.unwrap();
        // Requests to servers: n-1 puts + n-1 fence confirmations per proc.
        let to_servers: u64 =
            trace.snapshot().iter().filter(|e| e.dst.is_server() && e.tag == Tag(Tag::ARMCI_BASE)).count() as u64
                - n as u64; // minus rank 0's shutdown + (n-1)? shutdown is rank 0 only
                            // Rank 0 sends n shutdown messages at teardown; subtract them
                            // above (they carry the same request tag). Each proc sent
                            // (n-1) puts + (n-1) fences.
        assert_eq!(to_servers, (n as u64) * 2 * (n as u64 - 1), "n={n}");
    }
}

/// Binary-exchange stages only ever talk to XOR partners (powers of two).
#[test]
fn binary_exchange_partner_pattern() {
    let n = 8usize;
    let (_, trace) = run_cluster_traced(traced_cfg(n as u32), |a| {
        armci_msglib::Group::world(a.nprocs()).barrier_binary_exchange(a);
    });
    let trace = trace.unwrap();
    for ev in trace.snapshot() {
        if let (Endpoint::Proc(s), Endpoint::Proc(d)) = (ev.src, ev.dst) {
            let x = (s.0 ^ d.0) as usize;
            assert!(x.is_power_of_two(), "non-hypercube message {s} -> {d}");
        }
    }
}

/// Every message a process puts on the wire is counted in its [`Stats`]:
/// the per-rank transport trace and `stats.total_msgs()` must agree
/// exactly, modulo the teardown traffic the runtime sends *after* the
/// user function returned (one combined barrier = 2·log2(N) messages per
/// process, plus rank 0's one shutdown per server).
///
/// [`Stats`]: armci_core::Stats
#[test]
fn stats_count_every_wire_message() {
    for n in [2usize, 4] {
        let (stats, trace) = run_cluster_traced(traced_cfg(n as u32), |a| {
            let seg = a.malloc(64);
            let peer = ProcId(((a.rank() + 1) % a.nprocs()) as u32);
            // A mix of counted operations: put + fence, RMW round trip,
            // blocking get, and a combined barrier.
            a.put_u64(GlobalAddr::new(peer, seg, 8 * a.rank()), 7);
            a.fence(peer);
            a.fetch_add_u64(GlobalAddr::new(peer, seg, 0), 1);
            let mut out = [0u8; 8];
            a.get(GlobalAddr::new(peer, seg, 0), &mut out);
            a.barrier();
            a.stats()
        });
        let trace = trace.unwrap();
        let logn = n.trailing_zeros() as u64;
        for (r, s) in stats.iter().enumerate() {
            let teardown = 2 * logn + if r == 0 { n as u64 } else { 0 };
            assert_eq!(
                trace.sent_by(Endpoint::Proc(ProcId(r as u32))),
                s.total_msgs() + teardown,
                "rank {r} of {n}: stats must count every message on the wire"
            );
        }
    }
}

/// MCS lock handoff is one message; hybrid handoff is two (via server).
#[test]
fn lock_handoff_message_counts() {
    for (algo, expect_extra) in [(LockAlgo::Mcs, 1u64), (LockAlgo::Hybrid, 2u64)] {
        let mut cfg = traced_cfg(3);
        cfg.lock_algo = algo;
        let (_, trace) = run_cluster_traced(cfg, move |a| {
            let lock = LockId { owner: ProcId(0), idx: 0 };
            a.barrier();
            if a.rank() == 1 {
                a.lock(lock);
                std::thread::sleep(std::time::Duration::from_millis(30));
                // Rank 2 is now queued. Measure messages of the handoff.
                a.unlock(lock);
            }
            if a.rank() == 2 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                a.lock(lock);
                a.unlock(lock);
            }
            a.barrier();
        });
        let trace = trace.unwrap();
        // Count messages from rank 1 after it acquired: the release path.
        // MCS: one put to rank 2's node server (flag write). Hybrid: one
        // unlock to the server, which then sends one grant to rank 2.
        // We verify the *total* server->proc grant traffic instead, which
        // is algorithm-discriminating: hybrid grants = number of remote
        // acquisitions; MCS grants = 0 (handoff writes memory directly).
        let grants =
            trace.snapshot().iter().filter(|e| e.src.is_server() && e.tag == Tag(Tag::ARMCI_BASE + 5)).count() as u64;
        match algo {
            LockAlgo::Hybrid => assert_eq!(grants, expect_extra, "hybrid: two remote grants (r1, r2)"),
            _ => assert_eq!(grants, 0, "MCS never needs a server grant message"),
        }
    }
}
