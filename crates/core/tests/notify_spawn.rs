//! Multi-process notified-RMA test: two single-process "nodes" (separate
//! OS processes on the same host) reach each other through the shm
//! plane, so `put_notify` takes the zero-wire fast path — the payload
//! store and the notification-counter bump are both direct stores into
//! the peer's mapped segments, and `wait_notify` spins on local shared
//! memory. The contrast leg pins the shm plane off: the same notified
//! put must then ride the wire as a PUT_NOTIFY request.
//!
//! Kept to exactly one test function so the spawned children's libtest
//! filter can never match anything else (see `netfab_spawn.rs`).

use armci_core::{run_cluster_spawned, Armci, ArmciCfg, GlobalAddr};
use armci_transport::{LatencyModel, ProcId};

/// Notified put to the peer, wait for the peer's notification, read what
/// it wrote. Returns `(shm_puts, wire_msgs)` spent on the exchange.
fn notify_exchange(a: &mut Armci) -> (u64, u64) {
    let seg = a.malloc(8);
    a.barrier();
    let before = a.stats();
    let other = ProcId(((a.rank() + 1) % 2) as u32);
    let word = 40 + a.rank() as u64;
    a.put_notify(GlobalAddr::new(other, seg, 0), &word.to_le_bytes(), 3);
    a.wait_notify(3, 1);
    let shm = a.stats().shm_puts - before.shm_puts;
    let wire = a.stats().wire_msgs - before.wire_msgs;
    assert_eq!(a.local_segment(seg).read_u64(0), 40 + other.0 as u64, "peer's notified put not visible after wait");
    a.barrier();
    (shm, wire)
}

#[test]
fn put_notify_is_zero_wire_intra_host() {
    let child_args: Vec<String> =
        ["put_notify_is_zero_wire_intra_host", "--exact", "--test-threads=1"].iter().map(|s| s.to_string()).collect();
    let base = ArmciCfg { nodes: 2, procs_per_node: 1, latency: LatencyModel::zero(), ..Default::default() };

    // Shm plane on: the notified put is one direct shm store pair (data
    // then counter), zero wire messages end to end.
    let on = run_cluster_spawned(base.clone().with_shm_plane(Some(true)), &child_args, notify_exchange);
    assert_eq!(on, vec![(1, 0)], "same host must serve put_notify through shared memory, zero-wire");

    // Shm plane off: the processes cannot reach each other's memory, so
    // the notified put becomes a PUT_NOTIFY wire request.
    let off = run_cluster_spawned(base.with_shm_plane(Some(false)), &child_args, notify_exchange);
    assert_eq!(off[0].0, 0, "no shm plane, no shm puts");
    assert!(off[0].1 > 0, "without the shm plane the notified put must use the wire");
}
