//! Processor groups end to end on the threaded emulator: flat subset
//! barriers (member-scoped op counting + fencing), overlapping groups,
//! non-power-of-two member counts, and the topology-hierarchical barrier
//! with its `log2(nodes)` leader exchange.

use armci_core::{run_cluster, ArmciCfg, GlobalAddr};
use armci_proto::HierMsg;
use armci_transport::{LatencyModel, ProcId};

fn flat(n: u32) -> ArmciCfg {
    // These suites exercise the *flat* member-scoped protocol; pin the
    // hierarchy off so an active shm plane can't promote the groups.
    ArmciCfg::flat(n, LatencyModel::zero()).with_hier_collectives(false)
}

/// A flat subset group: each member puts into the next member's segment,
/// the group barrier completes that traffic, and everyone reads its
/// predecessor's value — while the non-members never participate.
#[test]
fn flat_group_barrier_completes_member_puts() {
    let members = [1usize, 3, 4]; // non-pow2, non-contiguous
    let out = run_cluster(flat(6), move |a| {
        let seg = a.malloc(8);
        let mut ok = true;
        if members.contains(&a.rank()) {
            let g = a.group(&members);
            assert!(!g.is_hierarchical());
            assert_eq!(g.len(), 3);
            let me_g = members.iter().position(|&m| m == a.rank()).unwrap();
            let next = members[(me_g + 1) % members.len()];
            a.put_u64(GlobalAddr::new(ProcId(next as u32), seg, 0), 100 + a.rank() as u64);
            a.barrier_group(&g);
            let prev = members[(me_g + members.len() - 1) % members.len()];
            ok = a.local_segment(seg).read_u64(0) == 100 + prev as u64;
        }
        a.barrier();
        ok
    });
    assert!(out.into_iter().all(|ok| ok));
}

/// Member-initiated traffic is what the group barrier waits for; a
/// non-member hammering a member with unfenced puts neither blocks the
/// group barrier nor is mistaken for member traffic.
#[test]
fn flat_group_barrier_ignores_non_member_traffic() {
    let members = [0usize, 2, 3];
    let out = run_cluster(flat(4), move |a| {
        let seg = a.malloc(16);
        if a.rank() == 1 {
            // Non-member: unfenced puts into member 2's segment.
            for i in 0..20u64 {
                a.put_u64(GlobalAddr::new(ProcId(2), seg, 8), i);
            }
            a.allfence();
        } else {
            let g = a.group(&members);
            let me_g = members.iter().position(|&m| m == a.rank()).unwrap();
            let next = members[(me_g + 1) % members.len()];
            a.put_u64(GlobalAddr::new(ProcId(next as u32), seg, 0), 7 + me_g as u64);
            // Must complete promptly despite rank 1's outstanding noise.
            a.barrier_group(&g);
            let prev_g = (me_g + members.len() - 1) % members.len();
            assert_eq!(a.local_segment(seg).read_u64(0), 7 + prev_g as u64);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

/// Two overlapping groups with distinct epoch spaces run collectives in
/// sequence without cross-talk, even though ranks 2 and 3 belong to both
/// and rank 4 races ahead to the second group's barrier.
#[test]
fn overlapping_groups_do_not_cross_talk() {
    let g1_m = [0usize, 1, 2, 3];
    let g2_m = [2usize, 3, 4];
    let out = run_cluster(flat(5), move |a| {
        let seg = a.malloc(16);
        let g1 = g1_m.contains(&a.rank()).then(|| a.group(&g1_m));
        let g2 = g2_m.contains(&a.rank()).then(|| a.group(&g2_m));
        if let Some(g) = &g1 {
            let me_g = g1_m.iter().position(|&m| m == a.rank()).unwrap();
            let next = g1_m[(me_g + 1) % g1_m.len()];
            a.put_u64(GlobalAddr::new(ProcId(next as u32), seg, 0), 10 + me_g as u64);
            a.barrier_group(g);
            let prev_g = (me_g + g1_m.len() - 1) % g1_m.len();
            assert_eq!(a.local_segment(seg).read_u64(0), 10 + prev_g as u64);
        }
        if let Some(g) = &g2 {
            let me_g = g2_m.iter().position(|&m| m == a.rank()).unwrap();
            let next = g2_m[(me_g + 1) % g2_m.len()];
            a.put_u64(GlobalAddr::new(ProcId(next as u32), seg, 8), 20 + me_g as u64);
            a.barrier_group(g);
            let prev_g = (me_g + g2_m.len() - 1) % g2_m.len();
            assert_eq!(a.local_segment(seg).read_u64(8), 20 + prev_g as u64);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

/// Group-scoped allfence completes member-directed puts only; a get
/// issued afterwards observes the fenced value.
#[test]
fn allfence_group_completes_member_directed_puts() {
    let members = [0usize, 2];
    let out = run_cluster(flat(3), move |a| {
        let seg = a.malloc(8);
        a.barrier();
        if a.rank() == 0 {
            let g = a.group(&members);
            a.put_u64(GlobalAddr::new(ProcId(2), seg, 0), 42);
            a.allfence_group(&g);
            let mut b = [0u8; 8];
            a.get(GlobalAddr::new(ProcId(2), seg, 0), &mut b);
            assert_eq!(u64::from_le_bytes(b), 42);
        } else if a.rank() == 2 {
            let g = a.group(&members);
            // Member 2 has nothing outstanding; its fence is trivial.
            a.allfence_group(&g);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

/// The hierarchical world-group barrier on an SMP emulator cluster:
/// domains are exactly the node partition, data put before the barrier is
/// visible after it, and each node's leader runs precisely
/// `log2(nodes)` inter-node exchange rounds while non-leaders send none.
#[test]
fn hier_barrier_domains_are_nodes_and_leaders_exchange_log2_rounds() {
    let cfg = ArmciCfg { nodes: 4, procs_per_node: 2, latency: LatencyModel::zero(), ..Default::default() }
        .with_hier_collectives(true);
    let out = run_cluster(cfg, |a| {
        let n = a.nprocs();
        let members: Vec<usize> = (0..n).collect();
        let seg = a.malloc(8 * n);
        let g = a.group(&members);
        assert!(g.is_hierarchical());
        let domains = g.domains().unwrap().to_vec();
        assert_eq!(domains, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]);
        // Three back-to-back rounds: the cumulative counters must not
        // confuse consecutive barriers.
        for round in 1..=3u64 {
            let next = ProcId(((a.rank() + 1) % n) as u32);
            a.put_u64(GlobalAddr::new(next, seg, 8 * a.rank()), round * 1000 + a.rank() as u64);
            a.barrier_group(&g);
            let prev = (a.rank() + n - 1) % n;
            assert_eq!(a.local_segment(seg).read_u64(8 * prev), round * 1000 + prev as u64);
            let log = a.take_hier_log();
            let xchg = log.iter().filter(|r| matches!(r.msg, HierMsg::Xchg(_))).count();
            let is_leader = a.rank() % 2 == 0;
            if is_leader {
                assert_eq!(xchg, 2, "log2(4 nodes) exchange rounds per leader");
            } else {
                assert_eq!(xchg, 0, "non-leaders never touch the wire");
                let arrives = log.iter().filter(|r| matches!(r.msg, HierMsg::Arrive { .. })).count();
                assert_eq!(arrives, 1, "non-leaders check in exactly once");
            }
            // Separate the read from the next round's overwrite.
            a.barrier_group(&g);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

/// A hierarchical *subset* group with ragged domains (one node
/// contributes a single member, member count is non-pow2) still
/// synchronizes correctly.
#[test]
fn hier_subset_group_with_ragged_domains() {
    let cfg = ArmciCfg { nodes: 4, procs_per_node: 2, latency: LatencyModel::zero(), ..Default::default() }
        .with_hier_collectives(true);
    let members = [0usize, 1, 2, 3, 4]; // node 2 contributes only rank 4; node 3 absent
    let out = run_cluster(cfg, move |a| {
        let seg = a.malloc(8);
        let mut ok = true;
        if members.contains(&a.rank()) {
            let g = a.group(&members);
            assert_eq!(g.domains().unwrap(), &[vec![0, 1], vec![2, 3], vec![4]]);
            let me_g = members.iter().position(|&m| m == a.rank()).unwrap();
            let next = members[(me_g + 1) % members.len()];
            a.put_u64(GlobalAddr::new(ProcId(next as u32), seg, 0), 300 + me_g as u64);
            a.barrier_group(&g);
            let prev_g = (me_g + members.len() - 1) % members.len();
            ok = a.local_segment(seg).read_u64(0) == 300 + prev_g as u64;
        }
        a.barrier();
        ok
    });
    assert!(out.into_iter().all(|ok| ok));
}

/// Two hierarchical groups coexisting on the same node claim distinct
/// counter slots: barriers on both, interleaved, stay correct.
#[test]
fn two_hier_groups_claim_distinct_counter_slots() {
    let cfg = ArmciCfg { nodes: 2, procs_per_node: 2, latency: LatencyModel::zero(), ..Default::default() }
        .with_hier_collectives(true);
    let g2_m = [0usize, 1]; // single-node group: one domain, no exchange
    let out = run_cluster(cfg, move |a| {
        let n = a.nprocs();
        let seg = a.malloc(8 * n);
        let world: Vec<usize> = (0..n).collect();
        let g1 = a.group(&world);
        let g2 = g2_m.contains(&a.rank()).then(|| a.group(&g2_m));
        for round in 1..=2u64 {
            let next = ProcId(((a.rank() + 1) % n) as u32);
            a.put_u64(GlobalAddr::new(next, seg, 8 * a.rank()), round * 10 + a.rank() as u64);
            a.barrier_group(&g1);
            let prev = (a.rank() + n - 1) % n;
            assert_eq!(a.local_segment(seg).read_u64(8 * prev), round * 10 + prev as u64);
            if let Some(g) = &g2 {
                a.barrier_group(g);
            }
            // Separate the read from the next round's overwrite.
            a.barrier_group(&g1);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}
