//! Property-based tests of the fault-plan and session-config codecs.
//!
//! Fault schedules and recovery knobs cross a process boundary in the
//! spawned-node launch payload; a lossy encoding would make a chaos run
//! unreproducible (the child would enact a different schedule than the
//! seed dictates) or silently drop a recovery setting. Arbitrary values
//! must round-trip bit-exactly through the vendored serde.

use std::time::Duration;

use armci_core::{ArmciCfg, FaultAction, FaultPlan, FaultSpec, OnPeerLoss, RetryPolicy};
use armci_proto::{MembershipView, RankSet};
use armci_transport::LatencyModel;
use proptest::prelude::*;

fn arb_action() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        Just(FaultAction::ResetConn),
        Just(FaultAction::TruncateFrame),
        any::<u64>().prop_map(|millis| FaultAction::StallWriter { millis }),
        any::<u32>().prop_map(|times| FaultAction::DialFail { times }),
        Just(FaultAction::KillNode),
    ]
}

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (0u32..64, 0u32..64, any::<u64>(), arb_action()).prop_map(|(node, peer, after_frames, action)| FaultSpec {
        node,
        peer,
        after_frames,
        action,
    })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(arb_spec(), 0..24).prop_map(|entries| FaultPlan { entries })
}

/// Tri-state `Option<bool>` (the vendored proptest shim has no
/// `option::of`).
fn arb_tristate() -> impl Strategy<Value = Option<bool>> {
    (0u32..3).prop_map(|i| match i {
        0 => None,
        1 => Some(false),
        _ => Some(true),
    })
}

/// A filesystem-safe path component of a length drawn from `len`.
fn arb_path_tail(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    proptest::collection::vec(0usize..ALPHABET.len(), len)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_fault_plan_roundtrips(plan in arb_plan()) {
        let json = serde::to_string(&plan);
        let back: FaultPlan = serde::from_str(&json).unwrap();
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn any_fault_spec_roundtrips(spec in arb_spec()) {
        let json = serde::to_string(&spec);
        let back: FaultSpec = serde::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn any_fault_action_roundtrips(action in arb_action()) {
        let json = serde::to_string(&action);
        let back: FaultAction = serde::from_str(&json).unwrap();
        prop_assert_eq!(back, action);
    }

    /// The session-recovery knobs ride the same launch payload as the
    /// fault plan; every combination must survive the trip, and the
    /// re-serialized payload must be byte-identical (the chaos harness
    /// compares schedules on their encoded form).
    #[test]
    fn session_cfg_fields_roundtrip_through_launch_payload(
        recovery in any::<bool>(),
        heartbeat_us in 1u64..10_000_000,
        suspect_us in 1u64..100_000_000,
        detect_us in 1u64..1_000_000,
        replay_window in 1usize..1 << 20,
        plan in arb_plan(),
    ) {
        let cfg = ArmciCfg::flat(2, LatencyModel::zero())
            .with_recovery(recovery)
            .with_heartbeat_interval(Duration::from_micros(heartbeat_us))
            .with_suspect_after(Duration::from_micros(suspect_us))
            .with_detect_slice(Duration::from_micros(detect_us))
            .with_replay_window(replay_window)
            .with_faults(plan.clone());
        let json = serde::to_string(&cfg);
        let back: ArmciCfg = serde::from_str(&json).unwrap();
        prop_assert_eq!(back.recovery, recovery);
        prop_assert_eq!(back.heartbeat_interval, Duration::from_micros(heartbeat_us));
        prop_assert_eq!(back.suspect_after, Duration::from_micros(suspect_us));
        prop_assert_eq!(back.detect_slice, Duration::from_micros(detect_us));
        prop_assert_eq!(back.replay_window, replay_window);
        prop_assert_eq!(back.faults, plan);
        prop_assert_eq!(serde::to_string(&back), json);
    }

    /// The shm-plane knobs travel in the same payload: the spawned node
    /// processes must agree with the parent on whether (and where) the
    /// shared-memory namespace lives, or routes would silently diverge.
    #[test]
    fn shm_plane_cfg_roundtrips_through_launch_payload(
        shm_plane in arb_tristate(),
        with_dir in any::<bool>(),
        tail in arb_path_tail(1..24),
    ) {
        // `shm_dir` must be absolute and only makes sense when the plane
        // is not explicitly disabled — mirror the builder's rules.
        let shm_dir = (with_dir && shm_plane != Some(false)).then(|| format!("/dev/shm/{tail}"));
        let cfg = ArmciCfg::flat(2, LatencyModel::zero())
            .with_shm_plane(shm_plane)
            .with_shm_dir(shm_dir.clone());
        cfg.validate().unwrap();
        let json = serde::to_string(&cfg);
        let back: ArmciCfg = serde::from_str(&json).unwrap();
        prop_assert_eq!(back.shm_plane, shm_plane);
        prop_assert_eq!(back.shm_dir, shm_dir);
        prop_assert_eq!(serde::to_string(&back), json);
    }

    /// Membership views cross process boundaries in degraded-mode
    /// harnesses; an arbitrary epoch/alive-set pair must survive the
    /// vendored serde bit-exactly (capacity included — a view of a
    /// 65-rank world with rank 64 alive exercises the bitmap tail).
    #[test]
    fn any_membership_view_roundtrips(
        capacity in 0usize..130,
        dead in proptest::collection::vec(any::<bool>(), 130..131),
        epoch in any::<u64>(),
    ) {
        let mut alive = RankSet::full(capacity);
        for (r, d) in dead.iter().enumerate().take(capacity) {
            if *d {
                alive.remove(r);
            }
        }
        let view = MembershipView { epoch, alive };
        let json = serde::to_string(&view);
        let back: MembershipView = serde::from_str(&json).unwrap();
        prop_assert_eq!(&back, &view);
        prop_assert_eq!(back.alive.capacity(), capacity);
        prop_assert_eq!(serde::to_string(&back), json);
    }

    /// The unified retry policy rides the launch payload; every field
    /// combination must round-trip (durations as whole microseconds —
    /// the codec's resolution).
    #[test]
    fn any_retry_policy_roundtrips(
        attempts in 1u32..10_000,
        base_us in 0u64..100_000_000,
        cap_us in 0u64..100_000_000,
        jitter in any::<bool>(),
    ) {
        let p = RetryPolicy {
            attempts,
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(cap_us),
            jitter,
        };
        let json = serde::to_string(&p);
        let back: RetryPolicy = serde::from_str(&json).unwrap();
        prop_assert_eq!(back, p);
        prop_assert_eq!(serde::to_string(&back), json);
    }

    /// `on_peer_loss` and the retry policy travel with the rest of the
    /// cluster config; both settings must survive the payload and the
    /// re-encoded form must be byte-identical.
    #[test]
    fn peer_loss_and_retry_roundtrip_through_launch_payload(
        degrade in any::<bool>(),
        attempts in 1u32..64,
        base_us in 0u64..10_000_000,
        jitter in any::<bool>(),
    ) {
        let policy = RetryPolicy {
            attempts,
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(base_us.saturating_mul(64)),
            jitter,
        };
        let mode = if degrade { OnPeerLoss::Degrade } else { OnPeerLoss::Abort };
        let cfg = ArmciCfg::flat(2, LatencyModel::zero())
            .with_on_peer_loss(mode)
            .with_retry(policy);
        cfg.validate().unwrap();
        let json = serde::to_string(&cfg);
        let back: ArmciCfg = serde::from_str(&json).unwrap();
        prop_assert_eq!(back.on_peer_loss, mode);
        prop_assert_eq!(back.retry, policy);
        prop_assert_eq!(serde::to_string(&back), json);
    }

    /// Invalid shm settings must be *rejected by the builder*, never
    /// silently accepted: a relative or empty directory, or a directory
    /// supplied while the plane is explicitly off.
    #[test]
    fn builder_rejects_bad_shm_dirs(tail in arb_path_tail(0..16)) {
        // Relative path (or the empty string when `tail` is empty).
        let rel = ArmciCfg::builder()
            .nodes(2)
            .latency(LatencyModel::zero())
            .shm_dir(Some(tail.clone()))
            .build();
        prop_assert!(rel.is_err(), "relative shm_dir {:?} accepted", tail);
        // Directory with the plane pinned off.
        let off = ArmciCfg::builder()
            .nodes(2)
            .latency(LatencyModel::zero())
            .shm_plane(Some(false))
            .shm_dir(Some(format!("/dev/shm/{tail}")))
            .build();
        prop_assert!(off.is_err(), "shm_dir with shm_plane=off accepted");
    }
}
