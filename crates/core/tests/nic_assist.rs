//! Integration tests for NIC-assisted mode (§5 future work): all
//! semantics must be preserved while synchronization traffic is routed to
//! the per-node NIC agent instead of the host server thread.

use armci_core::runtime::run_cluster_traced;
use armci_core::{run_cluster, ArmciCfg, GlobalAddr, LockAlgo, LockId};
use armci_transport::{LatencyModel, ProcId};

fn nic_cfg(nodes: u32, algo: LockAlgo) -> ArmciCfg {
    ArmciCfg::flat(nodes, LatencyModel::zero()).with_lock_algo(algo).with_nic_assist(true)
}

#[test]
fn visibility_with_nic_assist() {
    // NIC-path word puts and server-path bulk puts have no mutual
    // ordering (two independent FIFOs, like real NIC offload), so they
    // target distinct slots; the combined barrier must cover both.
    let out = run_cluster(nic_cfg(4, LockAlgo::Mcs), |a| {
        let n = a.nprocs();
        let seg = a.malloc(16 * n);
        for r in 0..n {
            // Word put rides the NIC path...
            a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 16 * a.rank()), 1);
            // ...bulk put rides the server path.
            a.put(GlobalAddr::new(ProcId(r as u32), seg, 16 * a.rank() + 8), &2u64.to_le_bytes());
        }
        a.barrier();
        let mine = a.local_segment(seg);
        (0..n).all(|r| mine.read_u64(16 * r) == 1 && mine.read_u64(16 * r + 8) == 2)
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn fence_covers_both_agents() {
    let out = run_cluster(nic_cfg(2, LockAlgo::Mcs), |a| {
        let seg = a.malloc(64);
        a.barrier();
        if a.rank() == 0 {
            a.put(GlobalAddr::new(ProcId(1), seg, 0), &7u64.to_le_bytes()); // server path
            a.put_u64(GlobalAddr::new(ProcId(1), seg, 8), 8); // NIC path
            let before = a.stats().fence_roundtrips;
            a.fence(ProcId(1));
            // One confirmation per agent with outstanding traffic.
            assert_eq!(a.stats().fence_roundtrips - before, 2);
            let mut buf = [0u8; 16];
            a.get(GlobalAddr::new(ProcId(1), seg, 0), &mut buf);
            assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), 7);
            assert_eq!(u64::from_le_bytes(buf[8..].try_into().unwrap()), 8);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn locks_work_under_nic_assist() {
    for algo in [LockAlgo::Hybrid, LockAlgo::Mcs, LockAlgo::McsPair, LockAlgo::McsSwap] {
        let nprocs = 4u64;
        let out = run_cluster(nic_cfg(nprocs as u32, algo), move |a| {
            let seg = a.malloc(8);
            let lock = LockId { owner: ProcId(0), idx: 0 };
            let ctr = GlobalAddr::new(ProcId(0), seg, 0);
            a.barrier();
            for _ in 0..10 {
                a.lock(lock);
                let mut b = [0u8; 8];
                a.get(ctr, &mut b);
                a.put(ctr, &(u64::from_le_bytes(b) + 1).to_le_bytes());
                a.fence(ProcId(0));
                a.unlock(lock);
            }
            a.barrier();
            let mut b = [0u8; 8];
            a.get(ctr, &mut b);
            u64::from_le_bytes(b)
        });
        for v in out {
            assert_eq!(v, nprocs * 10, "algo {algo:?}");
        }
    }
}

#[test]
fn sync_traffic_actually_reaches_the_nic() {
    let mut cfg = nic_cfg(2, LockAlgo::Mcs);
    cfg.trace = true;
    let (_, trace) = run_cluster_traced(cfg, |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 1 {
            a.lock(lock); // remote swap → NIC
            a.unlock(lock); // remote CAS → NIC
        }
        a.barrier();
    });
    let trace = trace.unwrap();
    let to_nic = trace.snapshot().iter().filter(|e| e.dst.is_nic()).count();
    // The swap and the CAS, plus rank 0's NIC shutdowns at teardown.
    assert!(to_nic >= 2, "lock RMWs must be routed to the NIC, saw {to_nic}");
    // And no RMW replies from host servers for the lock traffic.
    let server_rmw_replies = trace
        .snapshot()
        .iter()
        .filter(|e| e.src.is_server() && e.tag == armci_transport::Tag(armci_transport::Tag::ARMCI_BASE + 3))
        .count();
    assert_eq!(server_rmw_replies, 0, "host server must not see lock RMWs in NIC mode");
}

#[test]
fn nic_mode_off_keeps_nic_silent() {
    let mut cfg = ArmciCfg::flat(2, LatencyModel::zero());
    cfg.trace = true;
    let (_, trace) = run_cluster_traced(cfg, |a| {
        let seg = a.malloc(64);
        a.put_u64(GlobalAddr::new(ProcId((a.rank() as u32 + 1) % 2), seg, 0), 1);
        a.barrier();
    });
    let trace = trace.unwrap();
    assert_eq!(trace.snapshot().iter().filter(|e| e.dst.is_nic()).count(), 0);
}
