//! Integration tests for the distributed locks: mutual exclusion, FIFO
//! fairness, message-count properties, and cross-algorithm scenarios that
//! mirror the paper's Figures 3–6.

use armci_core::{run_cluster, ArmciCfg, GlobalAddr, LockAlgo, LockId};
use armci_transport::{LatencyModel, ProcId};

fn cfg(nodes: u32, ppn: u32, algo: LockAlgo) -> ArmciCfg {
    ArmciCfg { nodes, procs_per_node: ppn, latency: LatencyModel::zero(), lock_algo: algo, ..Default::default() }
}

/// Classic mutual-exclusion torture: a critical section performs a
/// non-atomic read-modify-write on shared remote memory; lost updates
/// prove a broken lock.
fn mutual_exclusion_torture(c: ArmciCfg, iters: u64) {
    let nprocs = (c.nodes * c.procs_per_node) as u64;
    let out = run_cluster(c, move |a| {
        let seg = a.malloc(16);
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let counter = GlobalAddr::new(ProcId(0), seg, 0);
        a.barrier();
        for _ in 0..iters {
            a.lock(lock);
            // Deliberately non-atomic increment: get, bump, put, fence.
            let mut buf = [0u8; 8];
            a.get(counter, &mut buf);
            let v = u64::from_le_bytes(buf) + 1;
            a.put(counter, &v.to_le_bytes());
            a.fence(ProcId(0));
            a.unlock(lock);
        }
        a.barrier();
        let mut buf = [0u8; 8];
        a.get(counter, &mut buf);
        u64::from_le_bytes(buf)
    });
    for v in out {
        assert_eq!(v, nprocs * iters, "lost updates: lock is broken");
    }
}

#[test]
fn hybrid_mutual_exclusion_flat() {
    mutual_exclusion_torture(cfg(4, 1, LockAlgo::Hybrid), 25);
}

#[test]
fn server_only_mutual_exclusion_flat() {
    mutual_exclusion_torture(cfg(4, 1, LockAlgo::ServerOnly), 25);
}

#[test]
fn server_only_mutual_exclusion_smp() {
    mutual_exclusion_torture(cfg(2, 2, LockAlgo::ServerOnly), 25);
}

#[test]
fn server_only_local_lock_still_messages() {
    // Unlike the hybrid, the pure server-queue lock messages the server
    // even for a node-local acquire — the overhead the hybrid's ticket
    // fast path removes (paper §3.2.1).
    let out = run_cluster(cfg(1, 2, LockAlgo::ServerOnly), |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 0 {
            let before = a.stats().server_msgs;
            a.lock(lock);
            a.unlock(lock);
            assert_eq!(a.stats().server_msgs - before, 2, "LockReq + UnlockReq");
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn ticket_poll_mutual_exclusion_flat() {
    mutual_exclusion_torture(cfg(4, 1, LockAlgo::TicketPoll), 15);
}

#[test]
fn ticket_poll_mutual_exclusion_smp() {
    mutual_exclusion_torture(cfg(2, 2, LockAlgo::TicketPoll), 15);
}

#[test]
fn ticket_poll_generates_poll_traffic() {
    // The strawman's defining flaw: a remote waiter burns server
    // round-trips while waiting. Hold the lock hostage briefly and count
    // the waiter's RMWs.
    let out = run_cluster(cfg(2, 1, LockAlgo::TicketPoll), |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 0 {
            a.lock(lock);
            std::thread::sleep(std::time::Duration::from_millis(20));
            a.unlock(lock);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(3));
            let before = a.stats().remote_rmws;
            a.lock(lock); // must poll until rank 0 releases
            let polls = a.stats().remote_rmws - before;
            a.unlock(lock);
            assert!(polls >= 3, "expected repeated remote polls, saw {polls}");
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn mcs_swap_mutual_exclusion_flat() {
    mutual_exclusion_torture(cfg(4, 1, LockAlgo::McsSwap), 25);
}

#[test]
fn mcs_swap_mutual_exclusion_smp() {
    mutual_exclusion_torture(cfg(2, 2, LockAlgo::McsSwap), 25);
}

#[test]
fn mcs_swap_usurper_stress() {
    // Hammer the swap-release recovery path: many processes, zero
    // latency, tight loop — the release-vs-enqueue race (and hence the
    // usurper append) fires regularly. Mutual exclusion must hold and
    // every iteration must finish (no lost wakeups).
    mutual_exclusion_torture(cfg(6, 1, LockAlgo::McsSwap), 40);
}

#[test]
fn mcs_swap_release_uses_no_cas() {
    // The whole point of the future-work variant: the release path stays
    // CAS-free. We can't observe op kinds directly, but an uncontended
    // *local* release must stay message-free and an uncontended *remote*
    // release must cost exactly one remote RMW (the swap), same count as
    // the CAS version — while the contended handoff is one put.
    let out = run_cluster(cfg(2, 1, LockAlgo::McsSwap), |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 1 {
            a.lock(lock);
            let before = a.stats().remote_rmws;
            a.unlock(lock);
            assert_eq!(a.stats().remote_rmws - before, 1, "swap-release = one remote swap");
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn mcs_and_mcs_swap_releases_interoperate() {
    // Both release styles on the same lock, alternating.
    let out = run_cluster(cfg(3, 1, LockAlgo::Mcs), |a| {
        let seg = a.malloc(8);
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let ctr = armci_core::GlobalAddr::new(ProcId(0), seg, 0);
        a.barrier();
        for i in 0..20 {
            a.lock_mcs(lock);
            let mut b = [0u8; 8];
            a.get(ctr, &mut b);
            a.put(ctr, &(u64::from_le_bytes(b) + 1).to_le_bytes());
            a.fence(ProcId(0));
            if i % 2 == 0 {
                a.unlock_mcs(lock);
            } else {
                a.unlock_mcs_swap(lock);
            }
        }
        a.barrier();
        let mut b = [0u8; 8];
        a.get(ctr, &mut b);
        u64::from_le_bytes(b)
    });
    for v in out {
        assert_eq!(v, 60);
    }
}

#[test]
fn mcs_mutual_exclusion_flat() {
    mutual_exclusion_torture(cfg(4, 1, LockAlgo::Mcs), 25);
}

#[test]
fn mcs_pair_mutual_exclusion_flat() {
    mutual_exclusion_torture(cfg(4, 1, LockAlgo::McsPair), 25);
}

#[test]
fn hybrid_mutual_exclusion_smp() {
    mutual_exclusion_torture(cfg(2, 2, LockAlgo::Hybrid), 25);
}

#[test]
fn mcs_mutual_exclusion_smp() {
    mutual_exclusion_torture(cfg(2, 2, LockAlgo::Mcs), 25);
}

#[test]
fn mcs_pair_mutual_exclusion_smp() {
    mutual_exclusion_torture(cfg(2, 2, LockAlgo::McsPair), 25);
}

#[test]
fn single_process_lock_unlock_local_and_remote() {
    for algo in [LockAlgo::Hybrid, LockAlgo::Mcs, LockAlgo::McsPair] {
        let out = run_cluster(cfg(2, 1, algo), |a| {
            // Local lock (owner = me) and remote lock (owner = peer).
            for owner in 0..2u32 {
                let lock = LockId { owner: ProcId(owner), idx: 1 };
                for _ in 0..10 {
                    a.lock(lock);
                    a.unlock(lock);
                }
                a.barrier(); // take turns so the two ranks don't contend
            }
            true
        });
        assert!(out.into_iter().all(|ok| ok), "algo {algo:?}");
    }
}

#[test]
fn mcs_local_uncontended_lock_needs_no_messages() {
    // §3.2.2: "eliminates the need to involve the server when the
    // processes requesting the lock, and the lock itself, are all on the
    // same node."
    let out = run_cluster(cfg(1, 2, LockAlgo::Mcs), |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 0 {
            let before = a.stats();
            for _ in 0..5 {
                a.lock(lock);
                a.unlock(lock);
            }
            let after = a.stats();
            assert_eq!(after.server_msgs, before.server_msgs, "MCS local lock must not contact the server");
            assert_eq!(after.local_rmws - before.local_rmws, 10, "swap + CAS per cycle, locally");
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn hybrid_local_unlock_still_contacts_server() {
    // §3.2.1: "the existing lock mechanism requires that the server thread
    // be contacted whenever a lock is released, even if the lock is local."
    let out = run_cluster(cfg(1, 2, LockAlgo::Hybrid), |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 0 {
            let before = a.stats().server_msgs;
            a.lock(lock); // local: shared-memory ticket, no message
            let mid = a.stats().server_msgs;
            a.unlock(lock); // but the release must message the server
            let after = a.stats().server_msgs;
            assert_eq!(mid - before, 0);
            assert_eq!(after - mid, 1);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn mcs_remote_uncontended_release_pays_cas_roundtrip() {
    // §3.2.2 / Figure 10: uncontended remote release = remote CAS.
    let out = run_cluster(cfg(2, 1, LockAlgo::Mcs), |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 1 {
            a.lock(lock); // remote swap: 1 remote rmw
            let before = a.stats().remote_rmws;
            a.unlock(lock); // uncontended: remote CAS round-trip
            assert_eq!(a.stats().remote_rmws - before, 1);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn mcs_handoff_is_one_message() {
    // Two remote ranks contend; when rank 1 releases while rank 2 waits,
    // the handoff is a single one-way put (no server round-trip).
    let out = run_cluster(cfg(3, 1, LockAlgo::Mcs), |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        if a.rank() == 1 {
            a.lock(lock);
            // Let rank 2 enqueue behind us.
            std::thread::sleep(std::time::Duration::from_millis(30));
            let rmws_before = a.stats().remote_rmws;
            let puts_before = a.stats().remote_puts;
            a.unlock(lock);
            // next != NULL path: zero rmws, exactly one put (the flag write).
            assert_eq!(a.stats().remote_rmws, rmws_before, "handoff must not CAS");
            assert_eq!(a.stats().remote_puts - puts_before, 1, "handoff is one message");
        }
        if a.rank() == 2 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            a.lock(lock);
            a.unlock(lock);
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn mcs_grants_are_fifo() {
    // MCS passes the lock in queue order. Ranks enqueue in a staggered
    // order enforced by sleeps; grant order must match enqueue order.
    let out = run_cluster(cfg(4, 1, LockAlgo::Mcs), |a| {
        let seg = a.malloc(8 * (a.nprocs() + 1));
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        // Stagger: rank r enqueues roughly r*20ms after the barrier. With
        // zero network latency the enqueue operations are far faster than
        // the stagger, so queue order == rank order.
        std::thread::sleep(std::time::Duration::from_millis(20 * a.rank() as u64));
        a.lock(lock);
        let order = a.fetch_add_u64(GlobalAddr::new(ProcId(0), seg, 0), 1);
        a.put_u64(GlobalAddr::new(ProcId(0), seg, 8 * (order as usize + 1)), a.rank() as u64);
        a.fence(ProcId(0));
        a.unlock(lock);
        a.barrier();
        if a.rank() == 0 {
            let s = a.local_segment(seg);
            let granted: Vec<u64> = (0..a.nprocs()).map(|i| s.read_u64(8 * (i + 1))).collect();
            assert_eq!(granted, vec![0, 1, 2, 3], "MCS grant order must be FIFO");
        }
        a.barrier();
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn independent_locks_do_not_interfere() {
    // Two different lock slots at different owners, used concurrently by
    // disjoint rank pairs.
    let out = run_cluster(cfg(4, 1, LockAlgo::Mcs), |a| {
        let seg = a.malloc(32);
        let group = a.rank() / 2; // ranks {0,1} use lock A, {2,3} lock B
        let lock = LockId { owner: ProcId((group * 2) as u32), idx: group as u32 };
        let counter = GlobalAddr::new(ProcId((group * 2) as u32), seg, 0);
        a.barrier();
        for _ in 0..20 {
            a.lock(lock);
            let mut buf = [0u8; 8];
            a.get(counter, &mut buf);
            a.put(counter, &(u64::from_le_bytes(buf) + 1).to_le_bytes());
            a.fence(ProcId((group * 2) as u32));
            a.unlock(lock);
        }
        a.barrier();
        let mut buf = [0u8; 8];
        a.get(counter, &mut buf);
        u64::from_le_bytes(buf)
    });
    for v in out {
        assert_eq!(v, 40);
    }
}

#[test]
fn hybrid_and_mcs_slots_coexist() {
    // The same runtime can run hybrid locks on one slot and MCS locks on
    // another (they use disjoint words in the sync segment).
    let out = run_cluster(cfg(3, 1, LockAlgo::Mcs), |a| {
        let seg = a.malloc(16);
        let h = LockId { owner: ProcId(0), idx: 0 };
        let m = LockId { owner: ProcId(0), idx: 1 };
        a.barrier();
        for _ in 0..10 {
            a.lock_hybrid(h);
            let mut buf = [0u8; 8];
            a.get(GlobalAddr::new(ProcId(0), seg, 0), &mut buf);
            a.put(GlobalAddr::new(ProcId(0), seg, 0), &(u64::from_le_bytes(buf) + 1).to_le_bytes());
            a.fence(ProcId(0));
            a.unlock_hybrid(h);

            a.lock_mcs(m);
            let mut buf = [0u8; 8];
            a.get(GlobalAddr::new(ProcId(0), seg, 8), &mut buf);
            a.put(GlobalAddr::new(ProcId(0), seg, 8), &(u64::from_le_bytes(buf) + 1).to_le_bytes());
            a.fence(ProcId(0));
            a.unlock_mcs(m);
        }
        a.barrier();
        let mut h_total = [0u8; 8];
        let mut m_total = [0u8; 8];
        a.get(GlobalAddr::new(ProcId(0), seg, 0), &mut h_total);
        a.get(GlobalAddr::new(ProcId(0), seg, 8), &mut m_total);
        (u64::from_le_bytes(h_total), u64::from_le_bytes(m_total))
    });
    for (h, m) in out {
        assert_eq!(h, 30);
        assert_eq!(m, 30);
    }
}

#[test]
#[should_panic]
fn mcs_nesting_is_rejected() {
    run_cluster(cfg(1, 1, LockAlgo::Mcs), |a| {
        let l0 = LockId { owner: ProcId(0), idx: 0 };
        let l1 = LockId { owner: ProcId(0), idx: 1 };
        a.lock_mcs(l0);
        a.lock_mcs(l1); // one node structure per process: must panic
    });
}

#[test]
#[should_panic]
fn out_of_range_lock_idx_rejected() {
    run_cluster(cfg(1, 1, LockAlgo::Mcs), |a| {
        a.lock(LockId { owner: ProcId(0), idx: 999 });
    });
}

#[test]
fn create_lock_allocates_distinct_collective_slots() {
    let out = run_cluster(cfg(3, 1, LockAlgo::Mcs), |a| {
        // The paper's example: locks at different owners, allocated
        // collectively.
        let l1 = a.create_lock(ProcId(1));
        let l2 = a.create_lock(ProcId(1));
        let l3 = a.create_lock(ProcId(0));
        // All usable immediately and distinct.
        for l in [l1, l2, l3] {
            a.lock(l);
            a.unlock(l);
        }
        a.barrier();
        (l1, l2, l3)
    });
    for w in out.windows(2) {
        assert_eq!(w[0], w[1], "collective allocation diverged between ranks");
    }
    let (l1, l2, l3) = out[0];
    assert_eq!((l1.owner, l1.idx), (ProcId(1), 0));
    assert_eq!((l2.owner, l2.idx), (ProcId(1), 1));
    assert_eq!((l3.owner, l3.idx), (ProcId(0), 0));
}

#[test]
#[should_panic]
fn create_lock_exhaustion_panics() {
    let c = cfg(1, 1, LockAlgo::Mcs); // default 4 slots
    run_cluster(c, |a| {
        for _ in 0..5 {
            let _ = a.create_lock(ProcId(0));
        }
    });
}

#[test]
fn lock_under_nonzero_latency_smoke() {
    // A small contended run with real (small) latencies, both algorithms.
    let lat = LatencyModel::zero().with_inter_node(std::time::Duration::from_micros(30));
    for algo in [LockAlgo::Hybrid, LockAlgo::Mcs] {
        let mut c = cfg(3, 1, algo);
        c.latency = lat;
        let out = run_cluster(c, |a| {
            let lock = LockId { owner: ProcId(0), idx: 0 };
            a.barrier();
            for _ in 0..10 {
                a.lock(lock);
                a.unlock(lock);
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok), "algo {algo:?}");
    }
}
