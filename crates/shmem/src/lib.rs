#![warn(missing_docs)]
//! # armci-shmem — a Generalized-Portable-SHMEM-style facade
//!
//! The paper's introduction lists GPSHMEM (Parzyszek, Nieplocha, Kendall)
//! among the libraries implemented on top of ARMCI. This crate is that
//! layer for our reproduction: the classic SHMEM programming surface —
//! a *symmetric heap* (same allocation at the same offset on every PE),
//! `shmem_put`/`shmem_get`, atomic `fadd`/`swap`/`cswap`, `barrier_all`,
//! and point-wait (`wait_until`) — implemented entirely with
//! `armci-core`'s one-sided operations and the paper's combined
//! `ARMCI_Barrier()` as `shmem_barrier_all()`.
//!
//! ```
//! use armci_core::{run_cluster, ArmciCfg};
//! use armci_shmem::Shmem;
//! use armci_transport::LatencyModel;
//!
//! let out = run_cluster(ArmciCfg::flat(4, LatencyModel::zero()), |a| {
//!     let mut shm = Shmem::init(a, 1024);           // symmetric heap
//!     let x = shm.malloc_u64(a, 1).expect("heap space");
//!     let right = (shm.my_pe(a) + 1) % shm.n_pes(a);
//!     shm.put_u64(a, x, right, &[shm.my_pe(a) as u64]); // put to neighbour
//!     shm.barrier_all(a);                            // ARMCI_Barrier inside
//!     shm.get_u64(a, x, shm.my_pe(a), 1)[0]          // read own copy
//! });
//! assert_eq!(out, vec![3, 0, 1, 2]);
//! ```

use armci_core::{Armci, GlobalAddr, RmwOp};
use armci_transport::{ProcId, SegId};

/// A symmetric-heap address: an offset valid on every PE (processing
/// element), because allocation is collective and identical everywhere.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SymAddr(pub usize);

/// The SHMEM context for one PE: the symmetric heap segment plus a bump
/// allocator over it.
pub struct Shmem {
    seg: SegId,
    heap_len: usize,
    next: usize,
}

impl Shmem {
    /// Collectively initialize SHMEM with a symmetric heap of `heap_len`
    /// bytes on every PE (includes a barrier).
    pub fn init(armci: &mut Armci, heap_len: usize) -> Self {
        let seg = armci.malloc(heap_len);
        Shmem { seg, heap_len, next: 0 }
    }

    /// This PE's rank (`shmem_my_pe`).
    pub fn my_pe(&self, armci: &Armci) -> usize {
        armci.rank()
    }

    /// Number of PEs (`shmem_n_pes`).
    pub fn n_pes(&self, armci: &Armci) -> usize {
        armci.nprocs()
    }

    /// Collective symmetric allocation (`shmalloc`): `bytes` rounded up
    /// to 16-byte alignment; every PE receives the same [`SymAddr`].
    /// Returns `None` when the symmetric heap is exhausted.
    ///
    /// All PEs must call with the same size in the same order (standard
    /// SHMEM discipline); a barrier enforces the collectiveness.
    pub fn shmalloc(&mut self, armci: &mut Armci, bytes: usize) -> Option<SymAddr> {
        // Checked alignment/cursor math: a huge request must exhaust the
        // heap, not wrap the cursor around and "succeed".
        let addr = bytes
            .checked_next_multiple_of(16)
            .and_then(|aligned| self.next.checked_add(aligned))
            .filter(|&end| end <= self.heap_len)
            .map(|end| {
                let a = SymAddr(self.next);
                self.next = end;
                a
            });
        armci.barrier();
        addr
    }

    /// Symmetric allocation of `count` `u64`s. `None` when the heap is
    /// exhausted (including byte counts that overflow `usize`).
    pub fn malloc_u64(&mut self, armci: &mut Armci, count: usize) -> Option<SymAddr> {
        match count.checked_mul(8) {
            Some(bytes) => self.shmalloc(armci, bytes),
            None => {
                // Even a failed allocation is collective: keep the barrier
                // so PEs stay in lockstep.
                armci.barrier();
                None
            }
        }
    }

    /// Remaining symmetric heap bytes.
    pub fn heap_remaining(&self) -> usize {
        self.heap_len - self.next
    }

    fn at(&self, addr: SymAddr, pe: usize, byte_off: usize) -> GlobalAddr {
        assert!(addr.0 + byte_off <= self.heap_len, "symmetric address out of heap");
        GlobalAddr::new(ProcId(pe as u32), self.seg, addr.0 + byte_off)
    }

    /// `shmem_putmem`: one-sided put of raw bytes to `pe`'s copy of
    /// `addr`. Non-blocking for remote PEs; complete after
    /// [`Shmem::quiet`]/[`Shmem::barrier_all`].
    pub fn put(&self, armci: &mut Armci, addr: SymAddr, pe: usize, data: &[u8]) {
        armci.put(self.at(addr, pe, 0), data);
    }

    /// `shmem_getmem`: blocking get of raw bytes from `pe`'s copy.
    pub fn get(&self, armci: &mut Armci, addr: SymAddr, pe: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        armci.get(self.at(addr, pe, 0), &mut out);
        out
    }

    /// `shmem_put64`: put a slice of `u64`s.
    pub fn put_u64(&self, armci: &mut Armci, addr: SymAddr, pe: usize, vals: &[u64]) {
        for (i, &v) in vals.iter().enumerate() {
            armci.put_u64(self.at(addr, pe, 8 * i), v);
        }
    }

    /// `shmem_get64`: get `count` `u64`s.
    pub fn get_u64(&self, armci: &mut Armci, addr: SymAddr, pe: usize, count: usize) -> Vec<u64> {
        let bytes = self.get(armci, addr, pe, count * 8);
        bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
    }

    /// `shmem_longlong_fadd`: atomic fetch-add on `pe`'s copy.
    pub fn fadd_i64(&self, armci: &mut Armci, addr: SymAddr, pe: usize, add: i64) -> i64 {
        armci.fetch_add_i64(self.at(addr, pe, 0), add)
    }

    /// `shmem_longlong_swap`: atomic swap on `pe`'s copy.
    pub fn swap_u64(&self, armci: &mut Armci, addr: SymAddr, pe: usize, new: u64) -> u64 {
        armci.swap_u64(self.at(addr, pe, 0), new)
    }

    /// `shmem_longlong_cswap`: atomic compare&swap on `pe`'s copy;
    /// returns the observed value.
    pub fn cswap_u64(&self, armci: &mut Armci, addr: SymAddr, pe: usize, expect: u64, new: u64) -> u64 {
        armci.cas_u64(self.at(addr, pe, 0), expect, new)
    }

    /// `shmem_quiet`: complete all previously issued puts everywhere.
    pub fn quiet(&self, armci: &mut Armci) {
        armci.allfence();
    }

    /// `shmem_fence` toward one PE: complete puts to that PE's node.
    pub fn fence(&self, armci: &mut Armci, pe: usize) {
        armci.fence(ProcId(pe as u32));
    }

    /// `shmem_barrier_all`: global completion + barrier — implemented
    /// with the paper's combined `ARMCI_Barrier()`.
    pub fn barrier_all(&self, armci: &mut Armci) {
        armci.barrier();
    }

    /// `shmem_wait_until(addr, SHMEM_CMP_EQ, value)` on the local copy:
    /// poll a local symmetric `u64` until it equals `value` (deposited by
    /// a remote PE's put — SHMEM's point-to-point synchronization).
    pub fn wait_until_eq(&self, armci: &Armci, addr: SymAddr, value: u64) {
        let seg = armci.local_segment(self.seg);
        armci_transport::wait::spin_until_eq(seg.atomic_u64(addr.0), value);
    }

    /// Read this PE's own copy of a symmetric `u64` (local, atomic).
    pub fn local_u64(&self, armci: &Armci, addr: SymAddr) -> u64 {
        armci.local_segment(self.seg).read_u64(addr.0)
    }

    /// The raw RMW escape hatch (`shmem` extensions — pair operations).
    pub fn rmw(&self, armci: &mut Armci, addr: SymAddr, pe: usize, op: RmwOp) -> [u64; 2] {
        armci.rmw(self.at(addr, pe, 0), op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_core::{run_cluster, ArmciCfg};
    use armci_transport::LatencyModel;

    fn cfg(n: u32) -> ArmciCfg {
        ArmciCfg::flat(n, LatencyModel::zero())
    }

    #[test]
    fn symmetric_allocation_is_identical_everywhere() {
        let out = run_cluster(cfg(4), |a| {
            let mut shm = Shmem::init(a, 256);
            let x = shm.shmalloc(a, 24).unwrap();
            let y = shm.shmalloc(a, 1).unwrap();
            (x, y, shm.heap_remaining())
        });
        for w in out.windows(2) {
            assert_eq!(w[0], w[1], "symmetric heap diverged between PEs");
        }
        assert_eq!(out[0].0, SymAddr(0));
        assert_eq!(out[0].1, SymAddr(32), "16-byte alignment");
    }

    #[test]
    fn heap_exhaustion_returns_none() {
        let out = run_cluster(cfg(2), |a| {
            let mut shm = Shmem::init(a, 64);
            let a1 = shm.shmalloc(a, 48);
            let a2 = shm.shmalloc(a, 32); // only 16 left
            (a1.is_some(), a2.is_none())
        });
        assert!(out.into_iter().all(|(x, y)| x && y));
    }

    #[test]
    fn oversized_requests_fail_instead_of_wrapping() {
        let out = run_cluster(cfg(2), |a| {
            let mut shm = Shmem::init(a, 64);
            // Alignment round-up would overflow `usize`.
            let near_max = shm.shmalloc(a, usize::MAX - 7);
            // Byte count itself overflows (count * 8).
            let huge_words = shm.malloc_u64(a, usize::MAX / 2);
            // The cursor math must survive: a normal allocation still works.
            let ok = shm.shmalloc(a, 16);
            (near_max.is_none(), huge_words.is_none(), ok == Some(SymAddr(0)), shm.heap_remaining())
        });
        assert!(out.into_iter().all(|t| t == (true, true, true, 48)));
    }

    #[test]
    fn put_barrier_get_ring() {
        let out = run_cluster(cfg(5), |a| {
            let mut shm = Shmem::init(a, 128);
            let x = shm.malloc_u64(a, 1).unwrap();
            let me = shm.my_pe(a);
            let right = (me + 1) % shm.n_pes(a);
            shm.put_u64(a, x, right, &[me as u64 + 10]);
            shm.barrier_all(a);
            shm.local_u64(a, x)
        });
        assert_eq!(out, vec![14, 10, 11, 12, 13]);
    }

    #[test]
    fn atomics_on_symmetric_heap() {
        let out = run_cluster(cfg(4), |a| {
            let mut shm = Shmem::init(a, 64);
            let ctr = shm.malloc_u64(a, 1).unwrap();
            shm.barrier_all(a);
            let t = shm.fadd_i64(a, ctr, 0, 1); // everyone bumps PE 0's copy
            shm.barrier_all(a);
            let total = shm.get_u64(a, ctr, 0, 1)[0];
            (t, total)
        });
        let mut tickets: Vec<i64> = out.iter().map(|&(t, _)| t).collect();
        tickets.sort_unstable();
        assert_eq!(tickets, vec![0, 1, 2, 3]);
        assert!(out.iter().all(|&(_, total)| total == 4));
    }

    #[test]
    fn cswap_single_winner() {
        let out = run_cluster(cfg(4), |a| {
            let mut shm = Shmem::init(a, 64);
            let word = shm.malloc_u64(a, 1).unwrap();
            shm.barrier_all(a);
            shm.cswap_u64(a, word, 0, 0, shm.my_pe(a) as u64 + 1) == 0
        });
        assert_eq!(out.into_iter().filter(|&w| w).count(), 1);
    }

    #[test]
    fn wait_until_point_to_point_sync() {
        let out = run_cluster(cfg(2), |a| {
            let mut shm = Shmem::init(a, 64);
            let flag = shm.malloc_u64(a, 1).unwrap();
            let data = shm.malloc_u64(a, 1).unwrap();
            if shm.my_pe(a) == 0 {
                shm.put_u64(a, data, 1, &[777]);
                shm.fence(a, 1); // data before flag
                shm.put_u64(a, flag, 1, &[1]);
                shm.barrier_all(a);
                true
            } else {
                shm.wait_until_eq(a, flag, 1);
                let v = shm.local_u64(a, data);
                shm.barrier_all(a);
                v == 777
            }
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn quiet_completes_puts() {
        let out = run_cluster(cfg(3), |a| {
            let mut shm = Shmem::init(a, 64);
            let x = shm.malloc_u64(a, 1).unwrap();
            shm.put_u64(a, x, (shm.my_pe(a) + 1) % shm.n_pes(a), &[9]);
            shm.quiet(a);
            armci_msglib::Group::world(a.nprocs()).barrier(a);
            shm.local_u64(a, x)
        });
        assert_eq!(out, vec![9, 9, 9]);
    }
}
