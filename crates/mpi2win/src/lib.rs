#![warn(missing_docs)]
//! # armci-mpi2win — MPI-2 one-sided communication over ARMCI
//!
//! The paper's §2 positions ARMCI as "a simpler and lower-level model of
//! one-sided communication than MPI-2". This crate makes that concrete by
//! implementing the MPI-2 RMA surface *on top of* `armci-core`:
//!
//! * [`Win::create`] — collective window creation (`MPI_Win_create`);
//! * [`Win::put`]/[`Win::get`]/[`Win::accumulate`] — origin-side RMA;
//! * [`Win::fence`] — active-target synchronization (`MPI_Win_fence`),
//!   which closes the epoch: all RMA everywhere completes before anyone
//!   returns. Implemented with the paper's combined `ARMCI_Barrier()` —
//!   exactly the operation MPI implementations build fence from;
//! * [`Win::lock`]/[`Win::unlock`] — passive-target exclusive access
//!   (`MPI_Win_lock(MPI_LOCK_EXCLUSIVE)`), implemented with ARMCI's
//!   distributed locks; unlock flushes the origin's RMA to the target
//!   before releasing, per the MPI-2 completion rules.
//!
//! The inverse layering of the real world (MPICH/Open MPI implement RMA
//! over point-to-point; ARMCI implemented GA; and ARMCI-MPI later
//! implemented ARMCI *over* MPI RMA) — here it shows that the ARMCI
//! primitives are sufficient to express the MPI-2 model.
//!
//! ```
//! use armci_core::{run_cluster, ArmciCfg};
//! use armci_mpi2win::Win;
//! use armci_transport::LatencyModel;
//!
//! let out = run_cluster(ArmciCfg::flat(4, LatencyModel::zero()), |a| {
//!     let win = Win::create(a, 64, 0);          // collective
//!     win.fence(a);                             // open an epoch
//!     let me = a.rank();
//!     let right = (me + 1) % a.nprocs();
//!     win.put(a, right, 0, &(me as u64 + 1).to_le_bytes());
//!     win.fence(a);                             // close the epoch
//!     u64::from_le_bytes(win.read_local(a, 0, 8).try_into().unwrap())
//! });
//! assert_eq!(out, vec![4, 1, 2, 3]);
//! ```

use armci_core::{Armci, GlobalAddr, LockId};
use armci_transport::{ProcId, SegId};

/// An RMA window: one collectively created memory region per process plus
/// the lock slot backing passive-target synchronization.
#[derive(Clone, Copy, Debug)]
pub struct Win {
    seg: SegId,
    len: usize,
    lock_slot: u32,
}

impl Win {
    /// Collective window creation: every process exposes `len` bytes.
    /// `lock_slot` selects which per-process lock slot backs
    /// `MPI_Win_lock` for this window (windows and application locks
    /// share the slot namespace; pick distinct slots).
    pub fn create(armci: &mut Armci, len: usize, lock_slot: u32) -> Self {
        assert!(lock_slot < armci.locks_per_proc(), "lock slot out of range");
        let seg = armci.malloc(len);
        Win { seg, len, lock_slot }
    }

    /// Window length per process.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn addr(&self, target: usize, disp: usize, nbytes: usize) -> GlobalAddr {
        assert!(disp + nbytes <= self.len, "RMA past window end: {disp}+{nbytes} > {}", self.len);
        GlobalAddr::new(ProcId(target as u32), self.seg, disp)
    }

    /// `MPI_Put`: non-blocking one-sided write of `data` at displacement
    /// `disp` in `target`'s window. Completes at the next [`Win::fence`]
    /// or at [`Win::unlock`] of that target.
    pub fn put(&self, armci: &mut Armci, target: usize, disp: usize, data: &[u8]) {
        armci.put(self.addr(target, disp, data.len()), data);
    }

    /// `MPI_Get`: read `len` bytes from `target`'s window.
    ///
    /// ARMCI gets are blocking, so this is also an `MPI_Get` +
    /// immediate completion — stronger than MPI requires.
    pub fn get(&self, armci: &mut Armci, target: usize, disp: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        armci.get(self.addr(target, disp, len), &mut out);
        out
    }

    /// `MPI_Accumulate(..., MPI_SUM)` on `f64` elements.
    pub fn accumulate(&self, armci: &mut Armci, target: usize, disp: usize, vals: &[f64]) {
        armci.acc_f64(self.addr(target, disp, vals.len() * 8), 1.0, vals);
    }

    /// `MPI_Win_fence`: collective epoch separation — every RMA issued by
    /// every process before the fence is complete everywhere after it.
    /// One combined `ARMCI_Barrier()`.
    pub fn fence(&self, armci: &mut Armci) {
        armci.barrier();
    }

    /// `MPI_Win_lock(MPI_LOCK_EXCLUSIVE, target)`: begin a passive-target
    /// access epoch on `target`'s window region.
    pub fn lock(&self, armci: &mut Armci, target: usize) {
        armci.lock(LockId { owner: ProcId(target as u32), idx: self.lock_slot });
    }

    /// `MPI_Win_unlock(target)`: complete all RMA this process issued to
    /// `target` during the epoch, then release the lock.
    pub fn unlock(&self, armci: &mut Armci, target: usize) {
        armci.fence(ProcId(target as u32));
        armci.unlock(LockId { owner: ProcId(target as u32), idx: self.lock_slot });
    }

    /// Read this process's own window memory (e.g. after a fence).
    pub fn read_local(&self, armci: &Armci, disp: usize, len: usize) -> Vec<u8> {
        assert!(disp + len <= self.len);
        let seg = armci.local_segment(self.seg);
        let mut out = vec![0u8; len];
        seg.read_bytes(disp, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_core::{run_cluster, ArmciCfg};
    use armci_transport::LatencyModel;

    fn cfg(n: u32) -> ArmciCfg {
        ArmciCfg::flat(n, LatencyModel::zero())
    }

    #[test]
    fn fence_epochs_complete_rma() {
        let out = run_cluster(cfg(4), |a| {
            let win = Win::create(a, 8 * a.nprocs(), 0);
            win.fence(a);
            for t in 0..a.nprocs() {
                win.put(a, t, 8 * a.rank(), &(a.rank() as u64 + 1).to_le_bytes());
            }
            win.fence(a);
            (0..a.nprocs()).all(|r| u64::from_le_bytes(win.read_local(a, 8 * r, 8).try_into().unwrap()) == r as u64 + 1)
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn accumulate_sums() {
        let out = run_cluster(cfg(3), |a| {
            let win = Win::create(a, 16, 0);
            win.fence(a);
            win.accumulate(a, 0, 8, &[2.0]);
            win.fence(a);
            if a.rank() == 0 {
                let b = win.read_local(a, 8, 8);
                return f64::from_le_bytes(b.try_into().unwrap()) == 6.0;
            }
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn passive_target_lock_serializes() {
        let out = run_cluster(cfg(4), |a| {
            let win = Win::create(a, 8, 1);
            win.fence(a);
            for _ in 0..10 {
                win.lock(a, 2);
                let v = u64::from_le_bytes(win.get(a, 2, 0, 8).try_into().unwrap());
                win.put(a, 2, 0, &(v + 1).to_le_bytes());
                win.unlock(a, 2); // flush-then-release
            }
            win.fence(a);
            u64::from_le_bytes(win.get(a, 2, 0, 8).try_into().unwrap())
        });
        for v in out {
            assert_eq!(v, 40);
        }
    }

    #[test]
    fn two_windows_are_independent() {
        let out = run_cluster(cfg(2), |a| {
            let w1 = Win::create(a, 16, 0);
            let w2 = Win::create(a, 16, 1);
            w1.fence(a);
            w1.put(a, 1 - a.rank(), 0, &[1; 8]);
            w2.put(a, 1 - a.rank(), 0, &[2; 8]);
            w1.fence(a); // single barrier epoch closes both here
            let a1 = w1.read_local(a, 0, 8);
            let a2 = w2.read_local(a, 0, 8);
            a1 == vec![1; 8] && a2 == vec![2; 8]
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    #[should_panic]
    fn rma_past_window_end_rejected() {
        run_cluster(cfg(2), |a| {
            let win = Win::create(a, 8, 0);
            win.put(a, 1 - a.rank(), 4, &[0; 8]);
        });
    }
}
