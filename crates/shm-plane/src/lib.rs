//! Cross-process shared-memory segment store.
//!
//! Each node process creates its ARMCI segments as files in a tmpfs
//! directory (`/dev/shm` when present) and `mmap`s them `MAP_SHARED`;
//! same-host peers in *other processes* map the same files and touch the
//! memory directly — zero wire messages for node-local targets. Word
//! atomicity holds across the processes because every mapping of a tmpfs
//! page resolves to the same physical address, so `AtomicU64` loads,
//! stores, and CAS are coherent between independent mappings.
//!
//! The descriptor exchange rides the rendezvous bootstrap for free: all
//! nodes of one run already share the rendezvous address, and
//! [`namespace_token`] derives the per-run directory name from it
//! deterministically. A segment is then fully described by the
//! `(proc, seg)` pair every rank already knows from `malloc`, so no
//! extra wire traffic is needed — the "descriptor" is a filename
//! convention, the per-host tmpfs-path variant of fd passing.
//!
//! `mmap`/`munmap` are hand-rolled FFI over the platform libc that std
//! already links against, consistent with the repo's vendored-serde
//! stance (see `netfab::poller` for the same approach to `poll(2)`).
//! On non-unix targets every operation reports `Unsupported`, which the
//! runtime treats as "fall back to the wire path".

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Derive the per-run namespace directory name from the rendezvous
/// address all nodes of a spawned/loopback run already share. The token
/// must be filesystem-safe, so everything outside `[A-Za-z0-9._-]` maps
/// to `_` (e.g. `127.0.0.1:41523` → `127.0.0.1_41523`).
pub fn namespace_token(rendezvous: &str) -> String {
    let mut t = String::with_capacity(rendezvous.len());
    for c in rendezvous.chars() {
        if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
            t.push(c);
        } else {
            t.push('_');
        }
    }
    format!("armci-shm-{t}")
}

/// Base directory for segment files: `dir` override when given, else
/// `/dev/shm` when it exists (Linux tmpfs), else the system temp dir.
pub fn base_dir(dir: Option<&str>) -> PathBuf {
    if let Some(d) = dir {
        return PathBuf::from(d);
    }
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// One `MAP_SHARED` mapping of a segment file. The mapping stays valid
/// after the file is unlinked (POSIX), so survivors keep working on a
/// dead peer's lock words during reclamation.
#[derive(Debug)]
pub struct ShmSegment {
    ptr: *mut u8,
    /// Mapped length in bytes; always a multiple of 8.
    len: usize,
}

// The mapping is plain shared memory accessed through atomics by the
// callers; the raw pointer itself carries no thread affinity.
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

impl ShmSegment {
    pub fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Mapped length in bytes (a multiple of 8).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of mapped 64-bit words.
    pub fn words(&self) -> usize {
        self.len / 8
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

/// The per-process view of one run's shared-memory namespace: creates
/// this process's segment files, maps peers' files, and unlinks its own
/// files on drop.
pub struct ShmPlane {
    dir: PathBuf,
    /// Files this process created, unlinked on drop. Files of peers
    /// killed mid-run are swept by [`ShmPlane::purge`] from the spawning
    /// parent (or by the last surviving drop, best effort).
    own_files: Mutex<Vec<PathBuf>>,
}

/// Filename of a process's liveness marker inside a namespace directory.
/// Every [`ShmPlane::new`] plants one; [`gc_stale`] probes the pids to
/// decide whether a namespace is orphaned.
fn pid_marker(pid: u32) -> String {
    format!("own-{pid}.pid")
}

/// Parse a liveness-marker filename back to its pid.
fn marker_pid(name: &str) -> Option<u32> {
    name.strip_prefix("own-")?.strip_suffix(".pid")?.parse().ok()
}

/// Sweep `base` for run namespaces (`armci-shm-*` directories) whose
/// owning processes are **all dead**, removing each — segment files
/// leaked by killed runs included. Returns the number of namespaces
/// removed.
///
/// Liveness is decided by the `own-<pid>.pid` markers every plane plants
/// at creation, probed with `kill(pid, 0)` (`EPERM` counts as alive — the
/// process exists under another uid). A directory with *no* markers is
/// left alone: it may belong to a run mid-creation (the marker lands one
/// syscall after `mkdir`) or to a foreign tool sharing the prefix, and
/// either way there is no evidence it is dead. Run this at startup,
/// before creating your own namespace, so tmpfs does not accumulate the
/// remains of crashed runs.
pub fn gc_stale(base: &Path) -> usize {
    let Ok(entries) = fs::read_dir(base) else { return 0 };
    let mut removed = 0;
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with("armci-shm-") || !e.path().is_dir() {
            continue;
        }
        let dir = e.path();
        let mut owners = 0;
        let mut alive = false;
        if let Ok(files) = fs::read_dir(&dir) {
            for f in files.flatten() {
                if let Some(pid) = f.file_name().to_str().and_then(marker_pid) {
                    owners += 1;
                    if sys::pid_alive(pid) {
                        alive = true;
                        break;
                    }
                }
            }
        }
        if owners > 0 && !alive && fs::remove_dir_all(&dir).is_ok() {
            removed += 1;
        }
    }
    removed
}

impl ShmPlane {
    /// Open (creating if needed) the namespace directory under `base`,
    /// planting this process's liveness marker so [`gc_stale`] can tell
    /// a crashed run's remains from a live run's files.
    pub fn new(base: &Path, namespace: &str) -> io::Result<ShmPlane> {
        sys::ensure_supported()?;
        let dir = base.join(namespace);
        fs::create_dir_all(&dir)?;
        let marker = dir.join(pid_marker(std::process::id()));
        fs::write(&marker, std::process::id().to_string())?;
        Ok(ShmPlane { dir, own_files: Mutex::new(vec![marker]) })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn seg_path(&self, proc: u32, seg: u32) -> PathBuf {
        self.dir.join(format!("p{proc}-s{seg}.seg"))
    }

    /// Create and map this process's segment `(proc, seg)` of `len`
    /// bytes. The file is sized up to the next word boundary so peers
    /// can map it as whole `AtomicU64`s.
    pub fn create_segment(&self, proc: u32, seg: u32, len: usize) -> io::Result<ShmSegment> {
        let path = self.seg_path(proc, seg);
        let bytes = len.div_ceil(8).max(1) * 8;
        let file = fs::OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        file.set_len(bytes as u64)?;
        let seg = sys::map(&file, bytes)?;
        self.own_files.lock().unwrap().push(path);
        Ok(seg)
    }

    /// Map a peer process's segment `(proc, seg)`, retrying until
    /// `deadline` while the file does not exist yet. The retry absorbs
    /// bootstrap skew: a rank may issue its first lock op before the
    /// slot owner's process has created its sync segment. Any error
    /// other than not-found (and timeout itself) is final and the
    /// caller falls back to the wire for this peer.
    pub fn map_peer(&self, proc: u32, seg: u32, deadline: Instant) -> io::Result<ShmSegment> {
        self.map_peer_paced(proc, seg, deadline, |_| Duration::from_millis(1))
    }

    /// [`ShmPlane::map_peer`] with a caller-supplied pacing schedule:
    /// `pause(attempt)` is the sleep after the `attempt`-th miss
    /// (0-based). This crate stays dependency-free, so callers with a
    /// unified retry policy pass its backoff in as a closure.
    pub fn map_peer_paced(
        &self,
        proc: u32,
        seg: u32,
        deadline: Instant,
        mut pause: impl FnMut(u32) -> Duration,
    ) -> io::Result<ShmSegment> {
        let path = self.seg_path(proc, seg);
        let mut attempt = 0u32;
        loop {
            match fs::OpenOptions::new().read(true).write(true).open(&path) {
                Ok(file) => {
                    let bytes = file.metadata()?.len() as usize;
                    if bytes == 0 || !bytes.is_multiple_of(8) {
                        // Owner mid-create (created but not yet sized):
                        // treat like not-found and retry.
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(io::ErrorKind::TimedOut, "segment file never sized"));
                        }
                    } else {
                        return sys::map(&file, bytes);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "segment file never appeared"));
                    }
                }
                Err(e) => return Err(e),
            }
            let p = pause(attempt).min(deadline.saturating_duration_since(Instant::now()));
            std::thread::sleep(p);
            attempt += 1;
        }
    }

    /// Remove the whole namespace directory, sweeping files leaked by
    /// killed processes. Safe to call while survivors still hold
    /// mappings (unlink does not invalidate them). Best effort.
    pub fn purge(base: &Path, namespace: &str) {
        let _ = fs::remove_dir_all(base.join(namespace));
    }
}

impl Drop for ShmPlane {
    fn drop(&mut self) {
        for path in self.own_files.lock().unwrap().drain(..) {
            let _ = fs::remove_file(path);
        }
        // Last process out removes the (now empty) namespace dir.
        let _ = fs::remove_dir(&self.dir);
    }
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    // mmap(2) via the platform libc std already links against. The
    // constants are identical across Linux and the BSDs for this use.
    const PROT_READ: c_int = 0x1;
    const PROT_WRITE: c_int = 0x2;
    const MAP_SHARED: c_int = 0x01;

    extern "C" {
        fn mmap(addr: *mut c_void, len: usize, prot: c_int, flags: c_int, fd: c_int, offset: i64) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn kill(pid: c_int, sig: c_int) -> c_int;
    }

    pub fn ensure_supported() -> io::Result<()> {
        Ok(())
    }

    /// Signal-0 liveness probe. `EPERM` means the process exists under
    /// another uid — alive. Pid 0 would signal our own process group, so
    /// it is never probed and reads as alive (the conservative answer).
    pub fn pid_alive(pid: u32) -> bool {
        if pid == 0 {
            return true;
        }
        let r = unsafe { kill(pid as c_int, 0) };
        r == 0 || io::Error::last_os_error().raw_os_error() == Some(1 /* EPERM */)
    }

    pub fn map(file: &File, bytes: usize) -> io::Result<super::ShmSegment> {
        let ptr = unsafe { mmap(std::ptr::null_mut(), bytes, PROT_READ | PROT_WRITE, MAP_SHARED, file.as_raw_fd(), 0) };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(super::ShmSegment { ptr: ptr.cast(), len: bytes })
    }

    pub fn unmap(ptr: *mut u8, len: usize) {
        if !ptr.is_null() && len > 0 {
            unsafe {
                munmap(ptr.cast(), len);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io;

    pub fn ensure_supported() -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "shm plane requires a unix mmap"))
    }

    /// No probe without `kill(2)`: report alive so nothing is unlinked.
    pub fn pid_alive(_pid: u32) -> bool {
        true
    }

    pub fn map(_file: &File, _bytes: usize) -> io::Result<super::ShmSegment> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "shm plane requires a unix mmap"))
    }

    pub fn unmap(_ptr: *mut u8, _len: usize) {}
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    fn test_ns(tag: &str) -> String {
        // Unique per test process so parallel `cargo test` runs never
        // collide; tests clean up via purge.
        format!("armci-shm-test-{}-{tag}", std::process::id())
    }

    #[test]
    fn namespace_token_is_filesystem_safe() {
        assert_eq!(namespace_token("127.0.0.1:41523"), "armci-shm-127.0.0.1_41523");
        assert_eq!(namespace_token("host/weird:*?"), "armci-shm-host_weird___");
        assert!(!namespace_token("[::1]:80").contains(['[', ']', ':']));
    }

    #[test]
    fn create_then_map_shares_memory() {
        let base = base_dir(None);
        let ns = test_ns("share");
        let plane = ShmPlane::new(&base, &ns).unwrap();
        let owner = plane.create_segment(3, 1, 100).unwrap();
        // 100 bytes rounds up to 104 = 13 words.
        assert_eq!(owner.len(), 104);
        assert_eq!(owner.words(), 13);

        let peer = plane.map_peer(3, 1, Instant::now() + Duration::from_secs(2)).unwrap();
        assert_eq!(peer.len(), 104);

        // A store through one mapping is an atomic load through the other.
        let a = unsafe { &*(owner.ptr() as *const AtomicU64) };
        let b = unsafe { &*(peer.ptr() as *const AtomicU64) };
        a.store(0xfeed_beef, Ordering::Release);
        assert_eq!(b.load(Ordering::Acquire), 0xfeed_beef);
        assert_eq!(b.compare_exchange(0xfeed_beef, 7, Ordering::AcqRel, Ordering::Acquire), Ok(0xfeed_beef));
        assert_eq!(a.load(Ordering::Acquire), 7);

        drop(peer);
        drop(owner);
        drop(plane);
        ShmPlane::purge(&base, &ns);
    }

    #[test]
    fn map_peer_times_out_when_file_never_appears() {
        let base = base_dir(None);
        let ns = test_ns("timeout");
        let plane = ShmPlane::new(&base, &ns).unwrap();
        let start = Instant::now();
        let err = plane.map_peer(9, 9, Instant::now() + Duration::from_millis(30)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(plane);
        ShmPlane::purge(&base, &ns);
    }

    #[test]
    fn gc_stale_sweeps_dead_namespaces_and_keeps_live_ones() {
        // Private base dir: the scan must not race other tests (or real
        // runs) sharing /dev/shm.
        let base = std::env::temp_dir().join(format!("armci-gc-test-{}", std::process::id()));
        fs::create_dir_all(&base).unwrap();

        // A crashed run's remains: an orphan segment file plus a liveness
        // marker naming an already-reaped child process.
        let dead_pid = {
            let mut child = std::process::Command::new("true").spawn().expect("spawn true");
            let pid = child.id();
            child.wait().unwrap();
            pid
        };
        let dead_ns = base.join("armci-shm-dead");
        fs::create_dir_all(&dead_ns).unwrap();
        fs::write(dead_ns.join("p0-s0.seg"), vec![0u8; 64]).unwrap();
        fs::write(dead_ns.join(pid_marker(dead_pid)), dead_pid.to_string()).unwrap();

        // A live run: this process's own plane, marker planted by new().
        let live = ShmPlane::new(&base, "armci-shm-live").unwrap();
        let _seg = live.create_segment(0, 0, 64).unwrap();
        assert!(live.dir().join(pid_marker(std::process::id())).exists());

        // No markers: mid-creation or foreign — must be left alone.
        fs::create_dir_all(base.join("armci-shm-markerless")).unwrap();

        assert_eq!(gc_stale(&base), 1);
        assert!(!dead_ns.exists(), "orphaned namespace must be swept");
        assert!(live.dir().join("p0-s0.seg").exists(), "live run's files must survive");
        assert!(base.join("armci-shm-markerless").exists(), "markerless dir must survive");

        drop(live);
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn drop_unlinks_own_files_but_mappings_survive() {
        let base = base_dir(None);
        let ns = test_ns("unlink");
        let plane = ShmPlane::new(&base, &ns).unwrap();
        let seg = plane.create_segment(0, 0, 64).unwrap();
        let path = plane.dir().join("p0-s0.seg");
        assert!(path.exists());
        drop(plane);
        assert!(!path.exists());
        // POSIX: the mapping outlives the unlink.
        let w = unsafe { &*(seg.ptr() as *const AtomicU64) };
        w.store(42, Ordering::Release);
        assert_eq!(w.load(Ordering::Acquire), 42);
        ShmPlane::purge(&base, &ns);
    }
}
