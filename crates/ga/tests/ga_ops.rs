//! Integration tests for the Global Arrays layer over the full ARMCI
//! runtime: patch consistency across distributions, both sync
//! algorithms, and accumulate semantics.

use armci_core::{run_cluster, ArmciCfg};
use armci_ga::{GlobalArray, Patch, SyncAlg};
use armci_transport::LatencyModel;

fn cfg(nodes: u32) -> ArmciCfg {
    ArmciCfg::flat(nodes, LatencyModel::zero())
}

#[test]
fn whole_array_write_and_read_back() {
    for nodes in [1u32, 2, 4, 6] {
        let out = run_cluster(cfg(nodes), move |a| {
            let ga = GlobalArray::create(a, 12, 12);
            if a.rank() == 0 {
                let data: Vec<f64> = (0..144).map(|x| x as f64).collect();
                ga.put(a, Patch::new(0, 12, 0, 12), &data);
            }
            ga.sync_world(a, SyncAlg::CombinedBarrier);
            let got = ga.get(a, Patch::new(0, 12, 0, 12));
            got == (0..144).map(|x| x as f64).collect::<Vec<_>>()
        });
        assert!(out.into_iter().all(|ok| ok), "nodes={nodes}");
    }
}

#[test]
fn each_rank_writes_remote_patches_paper_workload() {
    // The Figure 7 workload: every process writes values into portions of
    // the array that are remote to it, then GA_Sync() is called.
    for alg in [SyncAlg::Baseline, SyncAlg::CombinedBarrier] {
        let out = run_cluster(cfg(4), move |a| {
            let n = a.nprocs();
            let ga = GlobalArray::create(a, 16, 16);
            // Write the block owned by the *next* rank.
            let target = (a.rank() + 1) % n;
            let p = ga.owned_patch(target);
            let data = vec![a.rank() as f64 + 1.0; p.len()];
            ga.put(a, p, &data);
            ga.sync_world(a, alg);
            // My block must now hold my predecessor's value.
            let prev = (a.rank() + n - 1) % n;
            ga.local_block(a).iter().all(|&v| v == prev as f64 + 1.0)
        });
        assert!(out.into_iter().all(|ok| ok), "alg={alg:?}");
    }
}

#[test]
fn spanning_patch_put_get() {
    let out = run_cluster(cfg(4), |a| {
        let ga = GlobalArray::create(a, 8, 8);
        ga.fill(a, 0.0);
        if a.rank() == 2 {
            // A patch crossing all four blocks.
            let p = Patch::new(2, 6, 2, 6);
            let data: Vec<f64> = (0..16).map(|x| 100.0 + x as f64).collect();
            ga.put(a, p, &data);
        }
        ga.sync_world(a, SyncAlg::CombinedBarrier);
        let got = ga.get(a, Patch::new(2, 6, 2, 6));
        let inside_ok = got == (0..16).map(|x| 100.0 + x as f64).collect::<Vec<_>>();
        let border = ga.get(a, Patch::new(0, 2, 0, 8));
        let outside_ok = border.iter().all(|&v| v == 0.0);
        inside_ok && outside_ok
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn accumulate_from_all_ranks() {
    let out = run_cluster(cfg(4), |a| {
        let ga = GlobalArray::create(a, 8, 8);
        ga.fill(a, 1.0);
        // Everyone accumulates 1.0 into the same spanning patch.
        let p = Patch::new(1, 7, 1, 7);
        ga.acc(a, p, 1.0, &vec![1.0; p.len()]);
        ga.sync_world(a, SyncAlg::CombinedBarrier);
        let got = ga.get(a, p);
        got.iter().all(|&v| v == 1.0 + a.nprocs() as f64)
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn uneven_array_dimensions() {
    let out = run_cluster(cfg(3), |a| {
        // 7x10 over 3 procs (1x3 grid): blocks of 7x4, 7x4, 7x2.
        let ga = GlobalArray::create(a, 7, 10);
        if a.rank() == 1 {
            let p = Patch::new(0, 7, 0, 10);
            let data: Vec<f64> = (0..70).map(|x| x as f64 * 0.5).collect();
            ga.put(a, p, &data);
        }
        ga.sync_world(a, SyncAlg::CombinedBarrier);
        ga.get(a, Patch::new(6, 7, 8, 10)) == vec![34.0, 34.5]
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn repeated_sync_rounds_both_algorithms() {
    let out = run_cluster(cfg(4), |a| {
        let ga = GlobalArray::create(a, 8, 8);
        ga.fill(a, 0.0);
        for round in 0..6 {
            let alg = if round % 2 == 0 { SyncAlg::Baseline } else { SyncAlg::CombinedBarrier };
            let target = (a.rank() + 1 + round) % a.nprocs();
            let p = ga.owned_patch(target);
            ga.put(a, p, &vec![round as f64; p.len()]);
            ga.sync_world(a, alg);
            // All writes of this round must be visible everywhere.
            let full = ga.get(a, Patch::new(0, 8, 0, 8));
            if !full.iter().all(|&v| v == round as f64) {
                return false;
            }
            ga.sync_world(a, SyncAlg::CombinedBarrier);
        }
        true
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn smp_distribution() {
    let c = ArmciCfg { nodes: 2, procs_per_node: 2, latency: LatencyModel::zero(), ..Default::default() };
    let out = run_cluster(c, |a| {
        let ga = GlobalArray::create(a, 8, 8);
        let p = ga.owned_patch(a.rank());
        ga.put(a, p, &vec![a.rank() as f64; p.len()]);
        ga.sync_world(a, SyncAlg::CombinedBarrier);
        let full = ga.get(a, Patch::new(0, 8, 0, 8));
        // Every element equals its owner's rank.
        let d = *ga.distribution();
        (0..8).all(|r| (0..8).all(|c| full[r * 8 + c] == d.owner_of(r, c) as f64))
    });
    assert!(out.into_iter().all(|ok| ok));
}
