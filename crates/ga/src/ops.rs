//! Whole-array collective operations in the style of the Global Arrays
//! API: `GA_Fill`, `GA_Scale`, `GA_Add`, `GA_Ddot`, `GA_Copy`.
//!
//! Each process operates on its own block through shared memory and the
//! operation ends in a `GA_Sync` (the combined barrier), exactly how GA
//! implements these calls over ARMCI.

use armci_core::Armci;
use armci_msglib::Group;

use crate::array::{GlobalArray, SyncAlg};

impl GlobalArray {
    /// Collective `GA_Scale`: `A *= alpha`.
    pub fn scale(&self, armci: &mut Armci, alpha: f64) {
        let own = self.owned_patch(armci.rank());
        let seg = armci.local_segment(self.seg_id());
        for i in 0..own.len() {
            let v = f64::from_bits(seg.read_u64(i * 8));
            seg.write_u64(i * 8, (v * alpha).to_bits());
        }
        self.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// Collective `GA_Add`: `self = alpha * x + beta * y`, element-wise.
    /// All three arrays must share a shape (and hence a distribution).
    pub fn add_from(&self, armci: &mut Armci, alpha: f64, x: &GlobalArray, beta: f64, y: &GlobalArray) {
        assert_eq!(self.shape(), x.shape(), "GA_Add shape mismatch");
        assert_eq!(self.shape(), y.shape(), "GA_Add shape mismatch");
        let own = self.owned_patch(armci.rank());
        let dst = armci.local_segment(self.seg_id());
        let xs = armci.local_segment(x.seg_id());
        let ys = armci.local_segment(y.seg_id());
        for i in 0..own.len() {
            let xv = f64::from_bits(xs.read_u64(i * 8));
            let yv = f64::from_bits(ys.read_u64(i * 8));
            dst.write_u64(i * 8, (alpha * xv + beta * yv).to_bits());
        }
        self.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// Collective `GA_Ddot`: the global dot product `sum(A .* B)`.
    /// Local partial dot plus a recursive-doubling allreduce.
    pub fn dot(&self, armci: &mut Armci, other: &GlobalArray) -> f64 {
        assert_eq!(self.shape(), other.shape(), "GA_Ddot shape mismatch");
        let own = self.owned_patch(armci.rank());
        let a = armci.local_segment(self.seg_id());
        let b = armci.local_segment(other.seg_id());
        let mut partial = 0.0f64;
        for i in 0..own.len() {
            partial += f64::from_bits(a.read_u64(i * 8)) * f64::from_bits(b.read_u64(i * 8));
        }
        let mut v = [partial];
        Group::world(armci.nprocs()).allreduce_sum_f64(armci, &mut v);
        v[0]
    }

    /// Collective `GA_Copy`: `self = src` (same shape ⇒ same blocks, so
    /// each process copies its own block locally).
    pub fn copy_from(&self, armci: &mut Armci, src: &GlobalArray) {
        assert_eq!(self.shape(), src.shape(), "GA_Copy shape mismatch");
        let own = self.owned_patch(armci.rank());
        let dst = armci.local_segment(self.seg_id());
        let s = armci.local_segment(src.seg_id());
        let mut buf = vec![0u8; own.len() * 8];
        s.read_bytes(0, &mut buf);
        dst.write_bytes(0, &buf);
        self.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// Collective `GA_Transpose`: `dst = selfᵀ`. Each process transposes
    /// its own block locally and writes it one-sidedly into the mirrored
    /// patch of `dst`, then syncs with the combined barrier — the GA
    /// idiom the `ga_transpose` example walks through.
    pub fn transpose_into(&self, armci: &mut Armci, dst: &GlobalArray) {
        let (r, c) = self.shape();
        assert_eq!(dst.shape(), (c, r), "GA_Transpose needs a (cols x rows) destination");
        let own = self.owned_patch(armci.rank());
        let block = {
            let seg = armci.local_segment(self.seg_id());
            let mut bytes = vec![0u8; own.len() * 8];
            seg.read_bytes(0, &mut bytes);
            bytes
        };
        let rd = |i: usize| f64::from_le_bytes(block[i * 8..(i + 1) * 8].try_into().unwrap());
        let mut t = vec![0.0f64; own.len()];
        for i in 0..own.rows() {
            for j in 0..own.cols() {
                t[j * own.rows() + i] = rd(i * own.cols() + j);
            }
        }
        let mirrored = crate::Patch::new(own.col_lo, own.col_hi, own.row_lo, own.row_hi);
        dst.put(armci, mirrored, &t);
        dst.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// Global sum of all elements (a dot with an implicit ones-array).
    pub fn sum(&self, armci: &mut Armci) -> f64 {
        let own = self.owned_patch(armci.rank());
        let seg = armci.local_segment(self.seg_id());
        let mut partial = 0.0f64;
        for i in 0..own.len() {
            partial += f64::from_bits(seg.read_u64(i * 8));
        }
        let mut v = [partial];
        Group::world(armci.nprocs()).allreduce_sum_f64(armci, &mut v);
        v[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_core::{run_cluster, ArmciCfg};
    use armci_transport::LatencyModel;

    fn with_cluster<T: Send + 'static>(n: u32, f: impl Fn(&mut Armci) -> T + Send + Sync + 'static) -> Vec<T> {
        run_cluster(ArmciCfg::flat(n, LatencyModel::zero()), f)
    }

    #[test]
    fn fill_scale_sum() {
        let out = with_cluster(4, |a| {
            let ga = GlobalArray::create(a, 8, 8);
            ga.fill(a, 2.0);
            ga.scale(a, 1.5);
            ga.sum(a)
        });
        for s in out {
            assert_eq!(s, 64.0 * 3.0);
        }
    }

    #[test]
    fn add_and_dot() {
        let out = with_cluster(4, |a| {
            let x = GlobalArray::create(a, 8, 8);
            let y = GlobalArray::create(a, 8, 8);
            let z = GlobalArray::create(a, 8, 8);
            x.fill(a, 3.0);
            y.fill(a, 4.0);
            z.add_from(a, 2.0, &x, -1.0, &y); // z = 2*3 - 4 = 2
            let d = z.dot(a, &x); // sum(2*3) over 64 elements
            (z.sum(a), d)
        });
        for (s, d) in out {
            assert_eq!(s, 128.0);
            assert_eq!(d, 64.0 * 6.0);
        }
    }

    #[test]
    fn transpose_matches_naive() {
        for n in [1u32, 2, 4, 6] {
            let out = with_cluster(n, |a| {
                let x = GlobalArray::create(a, 12, 8);
                let t = GlobalArray::create(a, 8, 12);
                // x[i][j] = i * 100 + j, written by rank 0.
                if a.rank() == 0 {
                    let p = crate::Patch::new(0, 12, 0, 8);
                    let data: Vec<f64> = (0..12).flat_map(|i| (0..8).map(move |j| (i * 100 + j) as f64)).collect();
                    x.put(a, p, &data);
                }
                x.sync_world(a, SyncAlg::CombinedBarrier);
                x.transpose_into(a, &t);
                t.get(a, crate::Patch::new(0, 8, 0, 12))
            });
            for got in out {
                for i in 0..8 {
                    for j in 0..12 {
                        assert_eq!(got[i * 12 + j], (j * 100 + i) as f64, "n={n} t[{i}][{j}]");
                    }
                }
            }
        }
    }

    #[test]
    fn copy_preserves_contents() {
        let out = with_cluster(2, |a| {
            let x = GlobalArray::create(a, 6, 6);
            let y = GlobalArray::create(a, 6, 6);
            x.fill(a, 0.0);
            if a.rank() == 0 {
                let p = crate::Patch::new(0, 6, 0, 6);
                let data: Vec<f64> = (0..36).map(|v| v as f64).collect();
                x.put(a, p, &data);
            }
            x.sync_world(a, SyncAlg::CombinedBarrier);
            y.copy_from(a, &x);
            y.dot(a, &x) // sum of squares 0..35
        });
        let expect: f64 = (0..36).map(|v| (v * v) as f64).sum();
        for d in out {
            assert_eq!(d, expect);
        }
    }
}
