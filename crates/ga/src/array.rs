//! The distributed dense 2-D array and its one-sided patch operations.

use armci_core::{Armci, GlobalAddr, ProcGroup, Strided2D};
use armci_transport::ProcId;

use crate::dist::Distribution;
use crate::patch::Patch;

/// Which algorithm [`GlobalArray::sync`] uses — the switch the paper's
/// Figure 7 experiment flips.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncAlg {
    /// The original `GA_Sync()`: `ARMCI_AllFence()` (sequential
    /// per-server confirmations, `2(N-1)` latencies) followed by the
    /// message-passing barrier (`log2 N`).
    Baseline,
    /// The paper's `ARMCI_Barrier()`: op-count exchange + local wait +
    /// barrier, `2·log2(N)` latencies.
    CombinedBarrier,
    /// Notified RMA over a reusable transfer plan: producers tag each
    /// transfer with a notification-counter bump and consumers wait on
    /// exactly the counts the plan predicts — no `op_init` allreduce, no
    /// exchange barrier, **zero synchronization messages** per
    /// iteration. Requires a known, repeating transfer pattern, so the
    /// pattern-free `sync`/`sync_world` surfaces reject it: drive it
    /// through [`armci_core::TransferPlan::sync`] (see
    /// [`crate::GhostArray::plan_update`] for the ghost-exchange
    /// driver).
    Notify,
}

/// The one sync implementation behind every `sync` surface in the crate
/// ([`GlobalArray::sync`], [`crate::GlobalVector::sync`] and their
/// `sync_world` conveniences): completion of outstanding one-sided
/// operations *toward the group* plus a barrier *over the group*, with
/// the selected algorithm.
///
/// A flat group spanning every rank takes the classic world paths
/// (wire-identical to the historical `GA_Sync` implementations);
/// hierarchical groups always go through the group engines so the
/// node-locality hierarchy is exploited even at world scope.
pub(crate) fn run_sync(armci: &mut Armci, alg: SyncAlg, group: &ProcGroup) {
    if group.is_hierarchical() || group.len() < armci.nprocs() {
        match alg {
            SyncAlg::Baseline => {
                armci.allfence_group(group);
                group.msg().barrier_binary_exchange(armci);
            }
            SyncAlg::CombinedBarrier => armci.barrier_group(group),
            SyncAlg::Notify => notify_needs_a_plan(),
        }
    } else {
        run_sync_world(armci, alg);
    }
}

/// [`run_sync`] at world scope, without needing a group in hand.
pub(crate) fn run_sync_world(armci: &mut Armci, alg: SyncAlg) {
    match alg {
        SyncAlg::Baseline => armci.sync_baseline(),
        SyncAlg::CombinedBarrier => armci.barrier(),
        SyncAlg::Notify => notify_needs_a_plan(),
    }
}

/// [`SyncAlg::Notify`] cannot synchronize an unknown transfer pattern —
/// the whole point is waiting on counts a plan predicted in advance.
fn notify_needs_a_plan() -> ! {
    panic!(
        "SyncAlg::Notify requires a transfer plan: build an \
         armci_core::TransferPlan (or GhostArray::plan_update) and call \
         its post/sync methods instead of the pattern-free sync surfaces"
    )
}

/// A dense `rows x cols` array of `f64`, block-distributed over all
/// processes. Created collectively; all operations are one-sided except
/// [`GlobalArray::sync`] and [`GlobalArray::fill`].
#[derive(Clone, Copy, Debug)]
pub struct GlobalArray {
    seg: armci_transport::SegId,
    dist: Distribution,
}

/// Convert an `f64` slice to little-endian bytes.
fn to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Convert little-endian bytes back to `f64`s.
fn from_bytes(b: &[u8]) -> Vec<f64> {
    debug_assert_eq!(b.len() % 8, 0);
    b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

impl GlobalArray {
    /// Collectively create a `rows x cols` array distributed over all
    /// processes (uniform blocks on a near-square process grid). Each
    /// process allocates exactly its own block.
    pub fn create(armci: &mut Armci, rows: usize, cols: usize) -> Self {
        let dist = Distribution::new(rows, cols, armci.nprocs());
        let own = dist.owned_patch(armci.rank());
        let seg = armci.malloc(own.len().max(1) * 8);
        GlobalArray { seg, dist }
    }

    /// The distribution (block sizes, process grid).
    pub fn distribution(&self) -> &Distribution {
        &self.dist
    }

    /// The registered segment backing this array's local blocks.
    pub fn seg_id(&self) -> armci_transport::SegId {
        self.seg
    }

    /// Global shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.dist.rows, self.dist.cols)
    }

    /// The patch owned by `rank`.
    pub fn owned_patch(&self, rank: usize) -> Patch {
        self.dist.owned_patch(rank)
    }

    /// Per-owner piece of `patch` translated into a strided descriptor in
    /// the owner's local block.
    fn pieces(&self, patch: &Patch) -> Vec<(ProcId, Strided2D, Patch)> {
        self.dist
            .split_by_owner(patch)
            .into_iter()
            .map(|(rank, piece)| {
                let (offset, ld) = self.dist.local_layout(rank, piece.row_lo, piece.col_lo);
                let desc = Strided2D { offset, rows: piece.rows(), row_bytes: piece.cols() * 8, stride: ld * 8 };
                (ProcId(rank as u32), desc, piece)
            })
            .collect()
    }

    /// One-sided put of `data` (row-major, `patch.len()` elements) into
    /// the global patch. Non-blocking for remote owners: completion is
    /// guaranteed only after a fence or [`GlobalArray::sync`].
    pub fn put(&self, armci: &mut Armci, patch: Patch, data: &[f64]) {
        assert_eq!(data.len(), patch.len(), "data length does not match patch");
        for (owner, desc, piece) in self.pieces(&patch) {
            let chunk = extract_rows(data, &patch, &piece);
            armci.put_strided(owner, self.seg, desc, &to_bytes(&chunk));
        }
    }

    /// One-sided get of the global patch as a row-major `f64` vector.
    pub fn get(&self, armci: &mut Armci, patch: Patch) -> Vec<f64> {
        let mut out = vec![0.0f64; patch.len()];
        for (owner, desc, piece) in self.pieces(&patch) {
            let bytes = armci.get_strided(owner, self.seg, desc);
            scatter_rows(&mut out, &patch, &piece, &from_bytes(&bytes));
        }
        out
    }

    /// One-sided atomic accumulate: `A[patch] += scale * data`.
    pub fn acc(&self, armci: &mut Armci, patch: Patch, scale: f64, data: &[f64]) {
        assert_eq!(data.len(), patch.len(), "data length does not match patch");
        for (owner, desc, piece) in self.pieces(&patch) {
            let chunk = extract_rows(data, &patch, &piece);
            // Accumulate row by row (each row is contiguous remotely).
            for (row, off) in desc.row_offsets().enumerate() {
                let row_vals = &chunk[row * piece.cols()..(row + 1) * piece.cols()];
                armci.acc_f64(GlobalAddr::new(owner, self.seg, off), scale, row_vals);
            }
        }
    }

    /// Group-scoped `GA_Sync()`: completion of outstanding array
    /// operations toward the members of `group` plus a barrier over the
    /// group, with the selected algorithm. Collective over the group's
    /// members. Use [`GlobalArray::sync_world`] for the classic
    /// whole-world sync.
    pub fn sync(&self, armci: &mut Armci, alg: SyncAlg, group: &ProcGroup) {
        run_sync(armci, alg, group);
    }

    /// `GA_Sync()` over all processes — the historical surface.
    pub fn sync_world(&self, armci: &mut Armci, alg: SyncAlg) {
        run_sync_world(armci, alg);
    }

    /// Collectively fill the whole array with `value`.
    pub fn fill(&self, armci: &mut Armci, value: f64) {
        let own = self.owned_patch(armci.rank());
        let seg = armci.local_segment(self.seg);
        let bytes = value.to_le_bytes();
        for i in 0..own.len() {
            seg.write_bytes(i * 8, &bytes);
        }
        self.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// Read this process's own block (row-major), via shared memory.
    pub fn local_block(&self, armci: &Armci) -> Vec<f64> {
        let own = self.owned_patch(armci.rank());
        let seg = armci.local_segment(self.seg);
        let mut bytes = vec![0u8; own.len() * 8];
        seg.read_bytes(0, &mut bytes);
        from_bytes(&bytes)
    }
}

/// Copy the rows of `piece` out of `data` (laid out as `patch`,
/// row-major) into a dense row-major chunk.
fn extract_rows(data: &[f64], patch: &Patch, piece: &Patch) -> Vec<f64> {
    let mut out = Vec::with_capacity(piece.len());
    for r in piece.row_lo..piece.row_hi {
        let src_row = r - patch.row_lo;
        let src_start = src_row * patch.cols() + (piece.col_lo - patch.col_lo);
        out.extend_from_slice(&data[src_start..src_start + piece.cols()]);
    }
    out
}

/// Inverse of [`extract_rows`]: scatter a dense `piece` chunk into `out`
/// laid out as `patch`.
fn scatter_rows(out: &mut [f64], patch: &Patch, piece: &Patch, chunk: &[f64]) {
    for (i, r) in (piece.row_lo..piece.row_hi).enumerate() {
        let dst_row = r - patch.row_lo;
        let dst_start = dst_row * patch.cols() + (piece.col_lo - patch.col_lo);
        out[dst_start..dst_start + piece.cols()].copy_from_slice(&chunk[i * piece.cols()..(i + 1) * piece.cols()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_and_scatter_are_inverses() {
        let patch = Patch::new(0, 4, 0, 6);
        let piece = Patch::new(1, 3, 2, 5);
        let data: Vec<f64> = (0..24).map(|x| x as f64).collect();
        let chunk = extract_rows(&data, &patch, &piece);
        assert_eq!(chunk.len(), 6);
        assert_eq!(chunk, vec![8.0, 9.0, 10.0, 14.0, 15.0, 16.0]);
        let mut out = vec![0.0; 24];
        scatter_rows(&mut out, &patch, &piece, &chunk);
        for r in 1..3 {
            for c in 2..5 {
                assert_eq!(out[r * 6 + c], (r * 6 + c) as f64);
            }
        }
    }

    #[test]
    fn byte_conversions_roundtrip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(from_bytes(&to_bytes(&v)), v);
    }
}
