//! Uniform block distribution of a 2-D array over a process grid.
//!
//! Matches Global Arrays' default: processes are factored into a
//! near-square `pr x pc` grid and the array is split into `pr x pc`
//! contiguous blocks, one per process (the "distributed uniformly over
//! the set of processes" of the paper's §4.1 benchmark).

use crate::patch::Patch;

/// A `pr x pc` arrangement of `nprocs` processes (row-major rank order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProcGrid {
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
}

impl ProcGrid {
    /// Factor `nprocs` into the most-square grid with `pr <= pc`.
    pub fn near_square(nprocs: usize) -> Self {
        assert!(nprocs > 0);
        let mut pr = (nprocs as f64).sqrt() as usize;
        while pr > 1 && !nprocs.is_multiple_of(pr) {
            pr -= 1;
        }
        let pr = pr.max(1);
        ProcGrid { pr, pc: nprocs / pr }
    }

    /// Total processes.
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Grid coordinates of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.pc, rank % self.pc)
    }

    /// Rank at grid coordinates.
    pub fn rank_at(&self, gr: usize, gc: usize) -> usize {
        debug_assert!(gr < self.pr && gc < self.pc);
        gr * self.pc + gc
    }
}

/// Block distribution of `rows x cols` elements over a [`ProcGrid`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Distribution {
    /// Global rows.
    pub rows: usize,
    /// Global columns.
    pub cols: usize,
    /// The process grid.
    pub grid: ProcGrid,
    /// Rows per block (last grid row may hold fewer).
    pub block_rows: usize,
    /// Columns per block (last grid column may hold fewer).
    pub block_cols: usize,
}

impl Distribution {
    /// Distribute `rows x cols` over `nprocs` processes.
    ///
    /// # Panics
    /// Panics if the array is smaller than the process grid in either
    /// dimension (some process would own nothing).
    pub fn new(rows: usize, cols: usize, nprocs: usize) -> Self {
        let grid = ProcGrid::near_square(nprocs);
        assert!(
            rows >= grid.pr && cols >= grid.pc,
            "array {rows}x{cols} too small for a {}x{} process grid",
            grid.pr,
            grid.pc
        );
        Distribution { rows, cols, grid, block_rows: rows.div_ceil(grid.pr), block_cols: cols.div_ceil(grid.pc) }
    }

    /// The patch owned by `rank` (possibly smaller at the grid edges).
    pub fn owned_patch(&self, rank: usize) -> Patch {
        let (gr, gc) = self.grid.coords(rank);
        let row_lo = (gr * self.block_rows).min(self.rows);
        let row_hi = ((gr + 1) * self.block_rows).min(self.rows);
        let col_lo = (gc * self.block_cols).min(self.cols);
        let col_hi = ((gc + 1) * self.block_cols).min(self.cols);
        Patch::new(row_lo, row_hi, col_lo, col_hi)
    }

    /// Owner rank of element `(r, c)`.
    pub fn owner_of(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        self.grid.rank_at(r / self.block_rows, c / self.block_cols)
    }

    /// Split `patch` into `(owner_rank, sub_patch)` pieces, one per owner
    /// it intersects, in row-major grid order. Empty pieces are skipped.
    pub fn split_by_owner(&self, patch: &Patch) -> Vec<(usize, Patch)> {
        assert!(patch.row_hi <= self.rows && patch.col_hi <= self.cols, "patch {patch:?} out of bounds");
        let mut out = Vec::new();
        if patch.is_empty() {
            return out;
        }
        let gr_lo = patch.row_lo / self.block_rows;
        let gr_hi = (patch.row_hi - 1) / self.block_rows;
        let gc_lo = patch.col_lo / self.block_cols;
        let gc_hi = (patch.col_hi - 1) / self.block_cols;
        for gr in gr_lo..=gr_hi {
            for gc in gc_lo..=gc_hi {
                let rank = self.grid.rank_at(gr, gc);
                let piece = patch.intersect(&self.owned_patch(rank));
                if !piece.is_empty() {
                    out.push((rank, piece));
                }
            }
        }
        out
    }

    /// Byte offset of element `(r, c)` within its owner's row-major local
    /// block, plus the owner's local leading dimension in elements.
    pub fn local_layout(&self, rank: usize, r: usize, c: usize) -> (usize, usize) {
        let own = self.owned_patch(rank);
        debug_assert!(own.contains(r, c));
        let ld = own.cols();
        let idx = (r - own.row_lo) * ld + (c - own.col_lo);
        (idx * 8, ld)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_factoring() {
        assert_eq!(ProcGrid::near_square(1), ProcGrid { pr: 1, pc: 1 });
        assert_eq!(ProcGrid::near_square(4), ProcGrid { pr: 2, pc: 2 });
        assert_eq!(ProcGrid::near_square(6), ProcGrid { pr: 2, pc: 3 });
        assert_eq!(ProcGrid::near_square(7), ProcGrid { pr: 1, pc: 7 });
        assert_eq!(ProcGrid::near_square(16), ProcGrid { pr: 4, pc: 4 });
    }

    #[test]
    fn coords_roundtrip() {
        let g = ProcGrid::near_square(6);
        for rank in 0..6 {
            let (gr, gc) = g.coords(rank);
            assert_eq!(g.rank_at(gr, gc), rank);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (r, c) grid indexing mirrors the patch bounds
    fn blocks_partition_the_array() {
        let d = Distribution::new(10, 12, 6); // 2x3 grid, 5x4 blocks
        let mut covered = vec![vec![0u32; 12]; 10];
        for rank in 0..6 {
            let p = d.owned_patch(rank);
            assert!(!p.is_empty());
            for r in p.row_lo..p.row_hi {
                for c in p.col_lo..p.col_hi {
                    covered[r][c] += 1;
                    assert_eq!(d.owner_of(r, c), rank);
                }
            }
        }
        assert!(covered.iter().flatten().all(|&x| x == 1), "blocks must tile exactly once");
    }

    #[test]
    fn uneven_edges() {
        let d = Distribution::new(7, 7, 4); // 2x2 grid, 4x4 blocks, edges 3
        assert_eq!(d.owned_patch(0), Patch::new(0, 4, 0, 4));
        assert_eq!(d.owned_patch(3), Patch::new(4, 7, 4, 7));
    }

    #[test]
    fn split_spanning_patch() {
        let d = Distribution::new(8, 8, 4); // 2x2 grid, 4x4 blocks
        let pieces = d.split_by_owner(&Patch::new(2, 6, 2, 6));
        assert_eq!(pieces.len(), 4);
        let total: usize = pieces.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, 16);
        // Piece for rank 0 is its corner.
        assert_eq!(pieces[0], (0, Patch::new(2, 4, 2, 4)));
        assert_eq!(pieces[3], (3, Patch::new(4, 6, 4, 6)));
    }

    #[test]
    fn split_fully_local_patch() {
        let d = Distribution::new(8, 8, 4);
        let pieces = d.split_by_owner(&Patch::new(0, 2, 0, 2));
        assert_eq!(pieces, vec![(0, Patch::new(0, 2, 0, 2))]);
    }

    #[test]
    fn split_empty_patch() {
        let d = Distribution::new(8, 8, 4);
        assert!(d.split_by_owner(&Patch::new(3, 3, 0, 8)).is_empty());
    }

    #[test]
    fn local_layout_offsets() {
        let d = Distribution::new(8, 8, 4); // blocks 4x4, ld 4
        let (off, ld) = d.local_layout(3, 4, 4); // rank 3's corner element
        assert_eq!(off, 0);
        assert_eq!(ld, 4);
        let (off, _) = d.local_layout(3, 5, 6); // row 1, col 2 of the block
        assert_eq!(off, (4 + 2) * 8);
    }

    #[test]
    #[should_panic]
    fn too_small_array_rejected() {
        Distribution::new(2, 2, 16);
    }
}
