//! Ghost (halo) cells — Global Arrays' `GA_Update_ghosts` pattern.
//!
//! A [`GhostArray`] pairs a [`GlobalArray`] (the authoritative
//! distributed data) with a per-process local buffer holding this
//! process's block *plus* a ring of `width` ghost rows/columns copied
//! from the neighbouring blocks. [`GhostArray::update`] refreshes the
//! ring with one-sided gets (clipped at the global boundary), which is
//! exactly what stencil codes otherwise hand-roll (compare
//! `examples/stencil.rs`).
//!
//! For iterative stencils the pull-based `update` pays a full `GA_Sync`
//! every step. [`GhostArray::plan_update`] builds the notified-RMA
//! alternative once — a [`GhostUpdatePlan`] in which every rank *pushes*
//! its boundary rows straight into its neighbours' halo buffers with
//! `put_notify` — and [`GhostArray::update_with_plan`] then completes
//! each step by waiting on notification counts alone: no `op_init`
//! exchange, no barrier, zero synchronization messages.

use armci_core::{Armci, ArmciError, TransferPlan};
use armci_transport::{ProcId, SegId};

use crate::array::{GlobalArray, SyncAlg};
use crate::patch::Patch;

/// The halo-extended patch `own` grows to with a ghost ring of `width`,
/// clipped at the global boundary. Deterministic from the distribution,
/// so any rank can compute any other rank's extended patch — which is
/// what lets [`GhostArray::plan_update`] plan *pushes* into remote halo
/// buffers without an exchange of shapes.
fn ext_patch(own: &Patch, width: usize, rows: usize, cols: usize) -> Patch {
    Patch::new(
        own.row_lo.saturating_sub(width),
        (own.row_hi + width).min(rows),
        own.col_lo.saturating_sub(width),
        (own.col_hi + width).min(cols),
    )
}

/// A process-local view of one block of a [`GlobalArray`] with ghost
/// cells around it.
pub struct GhostArray {
    ga: GlobalArray,
    width: usize,
    /// This process's interior patch.
    own: Patch,
    /// The halo-extended patch actually stored locally (clipped globally).
    ext: Patch,
    /// Row-major local buffer of `ext`.
    buf: Vec<f64>,
}

impl GhostArray {
    /// Collectively wrap `ga` with a ghost ring of `width` cells.
    pub fn new(armci: &mut Armci, ga: GlobalArray, width: usize) -> Self {
        let own = ga.owned_patch(armci.rank());
        let (rows, cols) = ga.shape();
        let ext = ext_patch(&own, width, rows, cols);
        let buf = vec![0.0; ext.len()];
        let mut g = GhostArray { ga, width, own, ext, buf };
        g.update(armci);
        g
    }

    /// Ghost ring width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// This process's interior patch (no ghosts).
    pub fn interior(&self) -> Patch {
        self.own
    }

    /// The halo-extended patch stored locally.
    pub fn extended(&self) -> Patch {
        self.ext
    }

    /// Refresh the local buffer (interior + ghosts) from the distributed
    /// array — `GA_Update_ghosts`. Collective: ends with a barrier so no
    /// process reads ghosts while a neighbour is still writing.
    pub fn update(&mut self, armci: &mut Armci) {
        self.ga.sync_world(armci, SyncAlg::CombinedBarrier);
        self.buf = self.ga.get(armci, self.ext);
        armci_msglib::Group::world(armci.nprocs()).barrier(armci);
    }

    /// Read element `(r, c)` in *global* coordinates; must lie within the
    /// extended patch.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(self.ext.contains(r, c), "({r},{c}) outside the halo-extended patch {:?}", self.ext);
        self.buf[(r - self.ext.row_lo) * self.ext.cols() + (c - self.ext.col_lo)]
    }

    /// Write element `(r, c)` of the *interior* in the local buffer (not
    /// yet visible globally — call [`GhostArray::flush`]).
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(self.own.contains(r, c), "({r},{c}) outside the interior {:?}", self.own);
        self.buf[(r - self.ext.row_lo) * self.ext.cols() + (c - self.ext.col_lo)] = v;
    }

    /// Publish the interior back to the distributed array (one-sided put
    /// of this block) and sync.
    pub fn flush(&self, armci: &mut Armci) {
        let mut interior = Vec::with_capacity(self.own.len());
        for r in self.own.row_lo..self.own.row_hi {
            for c in self.own.col_lo..self.own.col_hi {
                interior.push(self.at(r, c));
            }
        }
        self.ga.put(armci, self.own, &interior);
        self.ga.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// The wrapped global array.
    pub fn global(&self) -> &GlobalArray {
        &self.ga
    }

    /// Collectively build the notified-RMA ghost exchange
    /// ([`SyncAlg::Notify`] for this access pattern): a halo segment on
    /// every rank plus two [`TransferPlan`]s (notify slots `slot` and
    /// `slot + 1`) in which each rank records one put per boundary row it
    /// contributes to each rank's halo — including its own, so the
    /// interior flows through the same plan. Batching collapses all rows
    /// bound for one neighbour into a single `put_notify` message.
    ///
    /// Two plans alternate over a double-buffered halo: a neighbour may
    /// only post iteration `k + 2` after syncing `k + 1`, which needs
    /// this rank's `k + 1` rows, which are sent only after iteration `k`
    /// of the halo has been copied out — so a fast neighbour can never
    /// overwrite a half that is still being read, with no extra
    /// messages.
    pub fn plan_update(&self, armci: &mut Armci, slot: u32) -> GhostUpdatePlan {
        let halo = armci.malloc(self.ext.len().max(1) * 8 * 2);
        let dist = *self.ga.distribution();
        let (rows, cols) = self.ga.shape();
        let me = armci.rank();
        let mut src = Vec::new();
        let mut plans = Vec::with_capacity(2);
        for parity in 0..2usize {
            let mut b = TransferPlan::builder(slot + parity as u32);
            for q in 0..armci.nprocs() {
                let ext_q = ext_patch(&dist.owned_patch(q), self.width, rows, cols);
                for (owner, piece) in dist.split_by_owner(&ext_q) {
                    if owner != me {
                        continue;
                    }
                    for r in piece.row_lo..piece.row_hi {
                        let dst_off = parity * ext_q.len() * 8
                            + ((r - ext_q.row_lo) * ext_q.cols() + (piece.col_lo - ext_q.col_lo)) * 8;
                        b.put(ProcId(q as u32), halo, dst_off, piece.cols() * 8);
                        if parity == 0 {
                            let src_off =
                                ((r - self.own.row_lo) * self.own.cols() + (piece.col_lo - self.own.col_lo)) * 8;
                            src.push((src_off, piece.cols() * 8));
                        }
                    }
                }
            }
            plans.push(b.build(armci)); // collective
        }
        let odd = plans.pop().expect("two plans");
        let even = plans.pop().expect("two plans");
        GhostUpdatePlan { halo, plans: [even, odd], src, parity: 0 }
    }

    /// One notified ghost exchange: push this rank's current block rows
    /// (read from the authoritative [`GlobalArray`] storage) into every
    /// consumer's halo, wait on the notification counter, and refresh the
    /// local buffer from the halo. Collective over the plan's builders;
    /// sends **zero** synchronization messages.
    pub fn update_with_plan(&mut self, armci: &mut Armci, plan: &mut GhostUpdatePlan) {
        if let Err(e) = self.try_update_with_plan(armci, plan) {
            panic!("ghost plan update failed: {e}");
        }
    }

    /// Fallible [`GhostArray::update_with_plan`]: a dead producer
    /// (degraded mode) or an expired deadline surfaces as an
    /// [`ArmciError`] instead of panicking.
    pub fn try_update_with_plan(&mut self, armci: &mut Armci, plan: &mut GhostUpdatePlan) -> Result<(), ArmciError> {
        let seg = armci.local_segment(self.ga.seg_id());
        let mut payloads = Vec::with_capacity(plan.src.len());
        for &(off, len) in &plan.src {
            let mut bytes = vec![0u8; len];
            seg.read_bytes(off, &mut bytes);
            payloads.push(bytes);
        }
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let p = plan.parity;
        plan.plans[p].post(armci, &refs);
        plan.plans[p].try_sync(armci)?;
        plan.parity ^= 1;
        let half = self.ext.len() * 8;
        let halo = armci.local_segment(plan.halo);
        let mut bytes = vec![0u8; half];
        halo.read_bytes(p * half, &mut bytes);
        for (i, c) in bytes.chunks_exact(8).enumerate() {
            self.buf[i] = f64::from_le_bytes(c.try_into().unwrap());
        }
        Ok(())
    }
}

/// A built notified ghost-exchange schedule — see
/// [`GhostArray::plan_update`]. Holds the double-buffered halo segment,
/// the even/odd [`TransferPlan`]s, and the local source row map.
pub struct GhostUpdatePlan {
    halo: SegId,
    plans: [TransferPlan; 2],
    /// Per recorded put, in payload order: `(byte offset, byte length)`
    /// of the source row inside this rank's own block.
    src: Vec<(usize, usize)>,
    /// Which plan (and halo half) the next update uses.
    parity: usize,
}

impl GhostUpdatePlan {
    /// The halo segment updates are pushed into (two halves).
    pub fn halo_seg(&self) -> SegId {
        self.halo
    }

    /// Notifications this rank receives per exchange.
    pub fn expected_per_iter(&self) -> u64 {
        self.plans[0].expected_per_iter()
    }

    /// Put-class messages this rank sends per exchange (each at most one
    /// wire message; zero when served by shared memory).
    pub fn batches_per_iter(&self) -> usize {
        self.plans[0].batches_per_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_core::{run_cluster, ArmciCfg};
    use armci_transport::LatencyModel;

    fn cfg(n: u32) -> ArmciCfg {
        ArmciCfg::flat(n, LatencyModel::zero())
    }

    #[test]
    fn ghosts_mirror_neighbours() {
        let out = run_cluster(cfg(4), |a| {
            let ga = GlobalArray::create(a, 8, 8); // 2x2 grid of 4x4 blocks
                                                   // Every element = owner rank.
            let own = ga.owned_patch(a.rank());
            ga.put(a, own, &vec![a.rank() as f64; own.len()]);
            let g = GhostArray::new(a, ga, 1);
            // Rank 0's block is rows 0..4, cols 0..4; its ghost column 4
            // belongs to rank 1, ghost row 4 to rank 2.
            if a.rank() == 0 {
                assert_eq!(g.at(0, 4), 1.0, "east ghost from rank 1");
                assert_eq!(g.at(4, 0), 2.0, "south ghost from rank 2");
                assert_eq!(g.at(4, 4), 3.0, "corner ghost from rank 3");
                assert_eq!(g.at(3, 3), 0.0, "interior untouched");
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn global_edges_are_clipped() {
        let out = run_cluster(cfg(4), |a| {
            let ga = GlobalArray::create(a, 8, 8);
            ga.fill(a, 1.0);
            let g = GhostArray::new(a, ga, 2);
            if a.rank() == 0 {
                // Top-left block: no ghosts above or left of the domain.
                assert_eq!(g.extended(), Patch::new(0, 6, 0, 6));
            }
            if a.rank() == 3 {
                assert_eq!(g.extended(), Patch::new(2, 8, 2, 8));
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn plan_update_matches_pull_update() {
        let out = run_cluster(cfg(4), |a| {
            let ga = GlobalArray::create(a, 8, 8);
            let own = ga.owned_patch(a.rank());
            let base: Vec<f64> = (own.row_lo..own.row_hi)
                .flat_map(|r| (own.col_lo..own.col_hi).map(move |c| (r * 8 + c) as f64))
                .collect();
            ga.put(a, own, &base);
            let mut g = GhostArray::new(a, ga, 1);
            let mut plan = g.plan_update(a, 0);
            // Three exchanges so both parities and the cumulative counter
            // targets are exercised.
            for step in 1..=3u64 {
                let bump: Vec<f64> = base.iter().map(|v| v + 1000.0 * step as f64).collect();
                ga.put(a, own, &bump); // local-only write to own block
                g.update_with_plan(a, &mut plan);
                let ext = g.extended();
                for r in ext.row_lo..ext.row_hi {
                    for c in ext.col_lo..ext.col_hi {
                        assert_eq!(g.at(r, c), (r * 8 + c) as f64 + 1000.0 * step as f64, "({r},{c}) step {step}");
                    }
                }
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn plan_update_non_pow2_ranks() {
        // 3 ranks form a 1x3 grid: only east/west neighbours, and the
        // middle rank has two producers while the edges have one (plus
        // themselves). 8x9 keeps block columns uneven-free (3 each).
        let out = run_cluster(cfg(3), |a| {
            let ga = GlobalArray::create(a, 8, 9);
            let own = ga.owned_patch(a.rank());
            ga.put(a, own, &vec![a.rank() as f64; own.len()]);
            let mut g = GhostArray::new(a, ga, 1);
            let mut plan = g.plan_update(a, 2);
            g.update_with_plan(a, &mut plan);
            let ext = g.extended();
            for r in ext.row_lo..ext.row_hi {
                for c in ext.col_lo..ext.col_hi {
                    assert_eq!(g.at(r, c), (c / 3) as f64, "({r},{c})");
                }
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn update_set_flush_cycle() {
        // A 1-wide blur using ghosts, verified against a serial pass.
        let out = run_cluster(cfg(4), |a| {
            let ga = GlobalArray::create(a, 8, 8);
            // A[i][j] = i*8+j.
            let own = ga.owned_patch(a.rank());
            let data: Vec<f64> = (own.row_lo..own.row_hi)
                .flat_map(|i| (own.col_lo..own.col_hi).map(move |j| (i * 8 + j) as f64))
                .collect();
            ga.put(a, own, &data);
            let mut g = GhostArray::new(a, ga, 1);

            // One Jacobi-ish sweep over interior points not on the global
            // boundary, reading through ghosts.
            let own = g.interior();
            let mut new_vals = Vec::new();
            for r in own.row_lo..own.row_hi {
                for c in own.col_lo..own.col_hi {
                    if r == 0 || r == 7 || c == 0 || c == 7 {
                        new_vals.push(g.at(r, c));
                    } else {
                        new_vals.push(0.25 * (g.at(r - 1, c) + g.at(r + 1, c) + g.at(r, c - 1) + g.at(r, c + 1)));
                    }
                }
            }
            let mut k = 0;
            for r in own.row_lo..own.row_hi {
                for c in own.col_lo..own.col_hi {
                    g.set(r, c, new_vals[k]);
                    k += 1;
                }
            }
            g.flush(a);
            // Check one cross-block point from every rank.
            let v = g.global().get(a, Patch::new(3, 4, 4, 5))[0];
            a.barrier();
            v
        });
        // Serial: A[3][4]=28; avg of A[2][4]=20, A[4][4]=36, A[3][3]=27, A[3][5]=29 = 28.
        for v in out {
            assert_eq!(v, 28.0);
        }
    }
}
