//! Ghost (halo) cells — Global Arrays' `GA_Update_ghosts` pattern.
//!
//! A [`GhostArray`] pairs a [`GlobalArray`] (the authoritative
//! distributed data) with a per-process local buffer holding this
//! process's block *plus* a ring of `width` ghost rows/columns copied
//! from the neighbouring blocks. [`GhostArray::update`] refreshes the
//! ring with one-sided gets (clipped at the global boundary), which is
//! exactly what stencil codes otherwise hand-roll (compare
//! `examples/stencil.rs`).

use armci_core::Armci;

use crate::array::{GlobalArray, SyncAlg};
use crate::patch::Patch;

/// A process-local view of one block of a [`GlobalArray`] with ghost
/// cells around it.
pub struct GhostArray {
    ga: GlobalArray,
    width: usize,
    /// This process's interior patch.
    own: Patch,
    /// The halo-extended patch actually stored locally (clipped globally).
    ext: Patch,
    /// Row-major local buffer of `ext`.
    buf: Vec<f64>,
}

impl GhostArray {
    /// Collectively wrap `ga` with a ghost ring of `width` cells.
    pub fn new(armci: &mut Armci, ga: GlobalArray, width: usize) -> Self {
        let own = ga.owned_patch(armci.rank());
        let (rows, cols) = ga.shape();
        let ext = Patch::new(
            own.row_lo.saturating_sub(width),
            (own.row_hi + width).min(rows),
            own.col_lo.saturating_sub(width),
            (own.col_hi + width).min(cols),
        );
        let buf = vec![0.0; ext.len()];
        let mut g = GhostArray { ga, width, own, ext, buf };
        g.update(armci);
        g
    }

    /// Ghost ring width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// This process's interior patch (no ghosts).
    pub fn interior(&self) -> Patch {
        self.own
    }

    /// The halo-extended patch stored locally.
    pub fn extended(&self) -> Patch {
        self.ext
    }

    /// Refresh the local buffer (interior + ghosts) from the distributed
    /// array — `GA_Update_ghosts`. Collective: ends with a barrier so no
    /// process reads ghosts while a neighbour is still writing.
    pub fn update(&mut self, armci: &mut Armci) {
        self.ga.sync_world(armci, SyncAlg::CombinedBarrier);
        self.buf = self.ga.get(armci, self.ext);
        armci_msglib::Group::world(armci.nprocs()).barrier(armci);
    }

    /// Read element `(r, c)` in *global* coordinates; must lie within the
    /// extended patch.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(self.ext.contains(r, c), "({r},{c}) outside the halo-extended patch {:?}", self.ext);
        self.buf[(r - self.ext.row_lo) * self.ext.cols() + (c - self.ext.col_lo)]
    }

    /// Write element `(r, c)` of the *interior* in the local buffer (not
    /// yet visible globally — call [`GhostArray::flush`]).
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(self.own.contains(r, c), "({r},{c}) outside the interior {:?}", self.own);
        self.buf[(r - self.ext.row_lo) * self.ext.cols() + (c - self.ext.col_lo)] = v;
    }

    /// Publish the interior back to the distributed array (one-sided put
    /// of this block) and sync.
    pub fn flush(&self, armci: &mut Armci) {
        let mut interior = Vec::with_capacity(self.own.len());
        for r in self.own.row_lo..self.own.row_hi {
            for c in self.own.col_lo..self.own.col_hi {
                interior.push(self.at(r, c));
            }
        }
        self.ga.put(armci, self.own, &interior);
        self.ga.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// The wrapped global array.
    pub fn global(&self) -> &GlobalArray {
        &self.ga
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_core::{run_cluster, ArmciCfg};
    use armci_transport::LatencyModel;

    fn cfg(n: u32) -> ArmciCfg {
        ArmciCfg::flat(n, LatencyModel::zero())
    }

    #[test]
    fn ghosts_mirror_neighbours() {
        let out = run_cluster(cfg(4), |a| {
            let ga = GlobalArray::create(a, 8, 8); // 2x2 grid of 4x4 blocks
                                                   // Every element = owner rank.
            let own = ga.owned_patch(a.rank());
            ga.put(a, own, &vec![a.rank() as f64; own.len()]);
            let g = GhostArray::new(a, ga, 1);
            // Rank 0's block is rows 0..4, cols 0..4; its ghost column 4
            // belongs to rank 1, ghost row 4 to rank 2.
            if a.rank() == 0 {
                assert_eq!(g.at(0, 4), 1.0, "east ghost from rank 1");
                assert_eq!(g.at(4, 0), 2.0, "south ghost from rank 2");
                assert_eq!(g.at(4, 4), 3.0, "corner ghost from rank 3");
                assert_eq!(g.at(3, 3), 0.0, "interior untouched");
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn global_edges_are_clipped() {
        let out = run_cluster(cfg(4), |a| {
            let ga = GlobalArray::create(a, 8, 8);
            ga.fill(a, 1.0);
            let g = GhostArray::new(a, ga, 2);
            if a.rank() == 0 {
                // Top-left block: no ghosts above or left of the domain.
                assert_eq!(g.extended(), Patch::new(0, 6, 0, 6));
            }
            if a.rank() == 3 {
                assert_eq!(g.extended(), Patch::new(2, 8, 2, 8));
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn update_set_flush_cycle() {
        // A 1-wide blur using ghosts, verified against a serial pass.
        let out = run_cluster(cfg(4), |a| {
            let ga = GlobalArray::create(a, 8, 8);
            // A[i][j] = i*8+j.
            let own = ga.owned_patch(a.rank());
            let data: Vec<f64> = (own.row_lo..own.row_hi)
                .flat_map(|i| (own.col_lo..own.col_hi).map(move |j| (i * 8 + j) as f64))
                .collect();
            ga.put(a, own, &data);
            let mut g = GhostArray::new(a, ga, 1);

            // One Jacobi-ish sweep over interior points not on the global
            // boundary, reading through ghosts.
            let own = g.interior();
            let mut new_vals = Vec::new();
            for r in own.row_lo..own.row_hi {
                for c in own.col_lo..own.col_hi {
                    if r == 0 || r == 7 || c == 0 || c == 7 {
                        new_vals.push(g.at(r, c));
                    } else {
                        new_vals.push(0.25 * (g.at(r - 1, c) + g.at(r + 1, c) + g.at(r, c - 1) + g.at(r, c + 1)));
                    }
                }
            }
            let mut k = 0;
            for r in own.row_lo..own.row_hi {
                for c in own.col_lo..own.col_hi {
                    g.set(r, c, new_vals[k]);
                    k += 1;
                }
            }
            g.flush(a);
            // Check one cross-block point from every rank.
            let v = g.global().get(a, Patch::new(3, 4, 4, 5))[0];
            a.barrier();
            v
        });
        // Serial: A[3][4]=28; avg of A[2][4]=20, A[4][4]=36, A[3][3]=27, A[3][5]=29 = 28.
        for v in out {
            assert_eq!(v, 28.0);
        }
    }
}
