//! Rectangular index ranges into a global array.

/// A half-open rectangular region `[row_lo, row_hi) x [col_lo, col_hi)`
/// of a 2-D global array (element indices, not bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Patch {
    /// First row (inclusive).
    pub row_lo: usize,
    /// One past the last row.
    pub row_hi: usize,
    /// First column (inclusive).
    pub col_lo: usize,
    /// One past the last column.
    pub col_hi: usize,
}

impl Patch {
    /// Construct a patch; empty patches (`lo == hi`) are allowed.
    ///
    /// # Panics
    /// Panics if `hi < lo` in either dimension.
    pub fn new(row_lo: usize, row_hi: usize, col_lo: usize, col_hi: usize) -> Self {
        assert!(row_lo <= row_hi && col_lo <= col_hi, "inverted patch bounds");
        Patch { row_lo, row_hi, col_lo, col_hi }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.row_hi - self.row_lo
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.col_hi - self.col_lo
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows() * self.cols()
    }

    /// True if the patch contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intersection with another patch; possibly empty.
    pub fn intersect(&self, other: &Patch) -> Patch {
        let row_lo = self.row_lo.max(other.row_lo);
        let row_hi = self.row_hi.min(other.row_hi).max(row_lo);
        let col_lo = self.col_lo.max(other.col_lo);
        let col_hi = self.col_hi.min(other.col_hi).max(col_lo);
        Patch { row_lo, row_hi, col_lo, col_hi }
    }

    /// True if `(r, c)` lies inside.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        (self.row_lo..self.row_hi).contains(&r) && (self.col_lo..self.col_hi).contains(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let p = Patch::new(2, 5, 1, 4);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 3);
        assert_eq!(p.len(), 9);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_patches() {
        assert!(Patch::new(3, 3, 0, 5).is_empty());
        assert!(Patch::new(0, 5, 2, 2).is_empty());
    }

    #[test]
    fn intersection_overlapping() {
        let a = Patch::new(0, 10, 0, 10);
        let b = Patch::new(5, 15, 8, 20);
        assert_eq!(a.intersect(&b), Patch::new(5, 10, 8, 10));
    }

    #[test]
    fn intersection_disjoint_is_empty() {
        let a = Patch::new(0, 5, 0, 5);
        let b = Patch::new(7, 9, 7, 9);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn contains_checks_both_dims() {
        let p = Patch::new(1, 3, 1, 3);
        assert!(p.contains(1, 2));
        assert!(!p.contains(3, 2));
        assert!(!p.contains(2, 0));
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_rejected() {
        Patch::new(5, 3, 0, 1);
    }
}
