#![warn(missing_docs)]
//! # armci-ga — a Global-Arrays-style distributed array library
//!
//! The paper evaluates its combined fence+barrier inside the Global
//! Arrays `GA_Sync()` call (§4.1): processes write remote patches of a
//! uniformly distributed 2-D array, then globally synchronize. This crate
//! is that substrate: dense 2-D `f64` arrays block-distributed over the
//! process grid, with one-sided patch `put`/`get`/`acc` built on
//! `armci-core`'s strided transfers, and a [`GlobalArray::sync`] whose
//! algorithm is selectable between the original implementation
//! (`ARMCI_AllFence()` + `MPI_Barrier()`) and the paper's new
//! `ARMCI_Barrier()` — exactly the switch the evaluation flips.
//!
//! ```
//! use armci_core::{run_cluster, ArmciCfg};
//! use armci_ga::{GlobalArray, Patch, SyncAlg};
//! use armci_transport::LatencyModel;
//!
//! let out = run_cluster(ArmciCfg::flat(2, LatencyModel::zero()), |a| {
//!     let ga = GlobalArray::create(a, 8, 8);
//!     if a.rank() == 0 {
//!         // Write a 2x8 stripe spanning both ranks' blocks.
//!         let patch = Patch::new(3, 5, 0, 8);
//!         ga.put(a, patch, &vec![1.5; 16]);
//!     }
//!     ga.sync_world(a, SyncAlg::CombinedBarrier);
//!     ga.get(a, Patch::new(3, 4, 0, 8)) // everyone reads a written row
//! });
//! assert!(out.iter().all(|row| row.iter().all(|&v| v == 1.5)));
//! ```

pub mod array;
pub mod dist;
pub mod ghost;
pub mod nxtval;
pub mod ops;
pub mod patch;
pub mod vector;

pub use array::{GlobalArray, SyncAlg};
pub use dist::{Distribution, ProcGrid};
pub use ghost::{GhostArray, GhostUpdatePlan};
pub use nxtval::SharedCounters;
pub use patch::Patch;
pub use vector::GlobalVector;
