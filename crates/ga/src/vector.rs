//! 1-D distributed arrays with indexed gather/scatter — the
//! `GA_Gather`/`GA_Scatter` surface, implemented over ARMCI's generalized
//! I/O-vector operations so that all elements owned by one process travel
//! in a single message.

use std::collections::BTreeMap;

use armci_core::{Armci, GlobalAddr, ProcGroup};
use armci_transport::{ProcId, SegId};

use crate::array::{run_sync, run_sync_world, SyncAlg};

/// Element positions grouped by owning rank: `(input position, (byte offset, len))`.
type RunsByOwner = BTreeMap<u32, Vec<(usize, (u64, u32))>>;

/// A dense 1-D array of `f64`, block-distributed: process `p` owns the
/// contiguous range `[p*block, min((p+1)*block, len))`.
#[derive(Clone, Copy, Debug)]
pub struct GlobalVector {
    seg: SegId,
    len: usize,
    block: usize,
    nprocs: usize,
}

impl GlobalVector {
    /// Collectively create a vector of `len` elements.
    pub fn create(armci: &mut Armci, len: usize) -> Self {
        let nprocs = armci.nprocs();
        assert!(len >= nprocs, "vector of {len} too small for {nprocs} processes");
        let block = len.div_ceil(nprocs);
        let seg = armci.malloc(block * 8);
        GlobalVector { seg, len, block, nprocs }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty (cannot occur via [`Self::create`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Owner and local byte offset of element `i`.
    fn locate(&self, i: usize) -> (ProcId, usize) {
        assert!(i < self.len, "index {i} out of bounds {}", self.len);
        let p = i / self.block;
        (ProcId(p as u32), (i - p * self.block) * 8)
    }

    /// The index range owned by `rank`.
    pub fn owned_range(&self, rank: usize) -> std::ops::Range<usize> {
        let lo = (rank * self.block).min(self.len);
        let hi = ((rank + 1) * self.block).min(self.len);
        lo..hi
    }

    /// One-sided write of one element.
    pub fn put_elem(&self, armci: &mut Armci, i: usize, v: f64) {
        let (p, off) = self.locate(i);
        armci.put_u64(GlobalAddr::new(p, self.seg, off), v.to_bits());
    }

    /// One-sided read of one element.
    pub fn get_elem(&self, armci: &mut Armci, i: usize) -> f64 {
        let (p, off) = self.locate(i);
        let mut b = [0u8; 8];
        armci.get(GlobalAddr::new(p, self.seg, off), &mut b);
        f64::from_le_bytes(b)
    }

    /// Group arbitrary element indices by owner, preserving input order
    /// within each owner (ARMCI vector-op batching).
    fn runs_by_owner(&self, idx: &[usize]) -> RunsByOwner {
        let mut by_owner: RunsByOwner = BTreeMap::new();
        for (pos, &i) in idx.iter().enumerate() {
            let (p, off) = self.locate(i);
            by_owner.entry(p.0).or_default().push((pos, (off as u64, 8)));
        }
        by_owner
    }

    /// `GA_Scatter`: write `vals[k]` to element `idx[k]`, batching all
    /// elements per owner into one I/O-vector put. Non-blocking; complete
    /// after [`GlobalVector::sync`]. Duplicate indices are a programming
    /// error (last-writer ambiguity), rejected in debug builds.
    pub fn scatter(&self, armci: &mut Armci, idx: &[usize], vals: &[f64]) {
        assert_eq!(idx.len(), vals.len(), "scatter arity mismatch");
        debug_assert!(
            {
                let mut s = idx.to_vec();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate indices in scatter"
        );
        for (owner, entries) in self.runs_by_owner(idx) {
            let runs: Vec<(u64, u32)> = entries.iter().map(|&(_, run)| run).collect();
            let mut data = Vec::with_capacity(entries.len() * 8);
            for &(pos, _) in &entries {
                data.extend_from_slice(&vals[pos].to_bits().to_le_bytes());
            }
            armci.put_vector(ProcId(owner), self.seg, &runs, &data);
        }
    }

    /// `GA_Gather`: read elements `idx[k]`, batching per owner into one
    /// I/O-vector get each. Returns values in `idx` order.
    pub fn gather(&self, armci: &mut Armci, idx: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0f64; idx.len()];
        for (owner, entries) in self.runs_by_owner(idx) {
            let runs: Vec<(u64, u32)> = entries.iter().map(|&(_, run)| run).collect();
            let bytes = armci.get_vector(ProcId(owner), self.seg, &runs);
            for (k, &(pos, _)) in entries.iter().enumerate() {
                out[pos] = f64::from_bits(u64::from_le_bytes(bytes[k * 8..(k + 1) * 8].try_into().unwrap()));
            }
        }
        out
    }

    /// Collective fill (includes a sync).
    pub fn fill(&self, armci: &mut Armci, v: f64) {
        let seg = armci.local_segment(self.seg);
        for i in 0..self.owned_range(armci.rank()).len() {
            seg.write_u64(i * 8, v.to_bits());
        }
        self.sync_world(armci, SyncAlg::CombinedBarrier);
    }

    /// Group-scoped completion + barrier (collective over the group's
    /// members); see [`crate::GlobalArray::sync`].
    pub fn sync(&self, armci: &mut Armci, alg: SyncAlg, group: &ProcGroup) {
        run_sync(armci, alg, group);
    }

    /// Completion + barrier over all processes — the historical surface.
    pub fn sync_world(&self, armci: &mut Armci, alg: SyncAlg) {
        run_sync_world(armci, alg);
    }

    /// Global dot product with another vector of the same shape.
    pub fn dot(&self, armci: &mut Armci, other: &GlobalVector) -> f64 {
        assert_eq!(self.len, other.len, "dot shape mismatch");
        let own = self.owned_range(armci.rank());
        let a = armci.local_segment(self.seg);
        let b = armci.local_segment(other.seg);
        let mut partial = 0.0;
        for i in 0..own.len() {
            partial += f64::from_bits(a.read_u64(i * 8)) * f64::from_bits(b.read_u64(i * 8));
        }
        let mut v = [partial];
        armci_msglib::Group::world(armci.nprocs()).allreduce_sum_f64(armci, &mut v);
        v[0]
    }

    /// The number of processes the vector is distributed over.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_core::{run_cluster, ArmciCfg};
    use armci_transport::LatencyModel;

    fn cfg(n: u32) -> ArmciCfg {
        ArmciCfg::flat(n, LatencyModel::zero())
    }

    #[test]
    fn ownership_partitions_indices() {
        let out = run_cluster(cfg(3), |a| {
            let v = GlobalVector::create(a, 10);
            (0..3).map(|r| v.owned_range(r)).collect::<Vec<_>>()
        });
        assert_eq!(out[0], vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn put_get_single_elements() {
        let out = run_cluster(cfg(4), |a| {
            let v = GlobalVector::create(a, 16);
            v.fill(a, 0.0);
            if a.rank() == 0 {
                for i in 0..16 {
                    v.put_elem(a, i, i as f64 * 1.5);
                }
            }
            v.sync_world(a, SyncAlg::CombinedBarrier);
            (0..16).map(|i| v.get_elem(a, i)).collect::<Vec<_>>()
        });
        for got in out {
            assert_eq!(got, (0..16).map(|i| i as f64 * 1.5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatter_gather_arbitrary_indices() {
        let out = run_cluster(cfg(4), |a| {
            let v = GlobalVector::create(a, 32);
            v.fill(a, -1.0);
            // Rank 2 scatters to a shuffled index set spanning all owners.
            let idx = vec![31, 0, 8, 17, 9, 25, 1];
            if a.rank() == 2 {
                let vals: Vec<f64> = idx.iter().map(|&i| 100.0 + i as f64).collect();
                v.scatter(a, &idx, &vals);
            }
            v.sync_world(a, SyncAlg::CombinedBarrier);
            let got = v.gather(a, &idx);
            let untouched = v.get_elem(a, 5);
            (got, untouched)
        });
        for (got, untouched) in out {
            assert_eq!(got, vec![131.0, 100.0, 108.0, 117.0, 109.0, 125.0, 101.0]);
            assert_eq!(untouched, -1.0);
        }
    }

    #[test]
    fn scatter_batches_one_message_per_owner() {
        let out = run_cluster(cfg(4), |a| {
            let v = GlobalVector::create(a, 32); // blocks of 8
            a.barrier();
            if a.rank() == 0 {
                let before = a.stats().server_msgs;
                // 6 elements over ranks 1..3 (2 each): 3 messages, not 6.
                v.scatter(a, &[8, 9, 16, 17, 24, 25], &[1.0; 6]);
                assert_eq!(a.stats().server_msgs - before, 3);
            }
            a.barrier();
            true
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    fn dot_product() {
        let out = run_cluster(cfg(2), |a| {
            let x = GlobalVector::create(a, 8);
            let y = GlobalVector::create(a, 8);
            x.fill(a, 2.0);
            y.fill(a, 3.0);
            x.dot(a, &y)
        });
        for d in out {
            assert_eq!(d, 8.0 * 6.0);
        }
    }
}
