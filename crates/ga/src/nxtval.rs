//! Shared atomic counters — Global Arrays' `GA_Read_inc` / TCGMSG's
//! `NXTVAL` pattern, the canonical dynamic-load-balancing primitive in GA
//! applications (each worker atomically draws the next task index).
//!
//! A [`SharedCounters`] is a 1-D array of `i64` counters distributed
//! round-robin over the processes; [`SharedCounters::read_inc`] is a
//! single one-sided atomic fetch-and-add (ARMCI's read-modify-write) on
//! the owning process's memory — no lock, no server involvement when the
//! counter is node-local.

use armci_core::{Armci, GlobalAddr};
use armci_transport::{ProcId, SegId};

/// A distributed array of atomic `i64` counters.
#[derive(Clone, Copy, Debug)]
pub struct SharedCounters {
    seg: SegId,
    count: usize,
    nprocs: usize,
}

impl SharedCounters {
    /// Collectively create `count` counters, initialized to zero,
    /// distributed round-robin: counter `i` lives at process `i % nprocs`.
    pub fn create(armci: &mut Armci, count: usize) -> Self {
        assert!(count > 0, "need at least one counter");
        let nprocs = armci.nprocs();
        let per_proc = count.div_ceil(nprocs);
        let seg = armci.malloc(per_proc.max(1) * 8);
        SharedCounters { seg, count, nprocs }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if there are no counters (cannot occur via [`Self::create`]).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Global address of counter `idx`.
    pub fn addr(&self, idx: usize) -> GlobalAddr {
        assert!(idx < self.count, "counter index {idx} out of range {}", self.count);
        let owner = ProcId((idx % self.nprocs) as u32);
        GlobalAddr::new(owner, self.seg, (idx / self.nprocs) * 8)
    }

    /// `GA_Read_inc`: atomically add `inc` to counter `idx`, returning
    /// the previous value.
    pub fn read_inc(&self, armci: &mut Armci, idx: usize, inc: i64) -> i64 {
        armci.fetch_add_i64(self.addr(idx), inc)
    }

    /// Read a counter (atomic snapshot).
    pub fn read(&self, armci: &mut Armci, idx: usize) -> i64 {
        armci.fetch_add_i64(self.addr(idx), 0)
    }

    /// Collectively reset every counter to zero (includes a barrier).
    pub fn reset(&self, armci: &mut Armci) {
        armci.barrier();
        for idx in 0..self.count {
            let a = self.addr(idx);
            if a.proc == armci.me() {
                armci.local_segment(self.seg).write_u64(a.offset, 0);
            }
        }
        armci.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_core::{run_cluster, ArmciCfg};
    use armci_transport::LatencyModel;

    #[test]
    fn counters_distribute_round_robin() {
        let out = run_cluster(ArmciCfg::flat(3, LatencyModel::zero()), |a| {
            let c = SharedCounters::create(a, 7);
            (0..7).map(|i| c.addr(i).proc.0).collect::<Vec<_>>()
        });
        assert_eq!(out[0], vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn read_inc_draws_unique_values() {
        // The NXTVAL pattern: all procs draw from one counter; the union
        // of drawn values must be exactly 0..total.
        let out = run_cluster(ArmciCfg::flat(4, LatencyModel::zero()), |a| {
            let c = SharedCounters::create(a, 1);
            a.barrier();
            let mut drawn = Vec::new();
            for _ in 0..25 {
                drawn.push(c.read_inc(a, 0, 1));
            }
            a.barrier();
            drawn
        });
        let mut all: Vec<i64> = out.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn reset_and_negative_increments() {
        let out = run_cluster(ArmciCfg::flat(2, LatencyModel::zero()), |a| {
            let c = SharedCounters::create(a, 3);
            a.barrier();
            c.read_inc(a, 2, 5);
            a.barrier();
            let v1 = c.read(a, 2); // both procs incremented by 5
            c.reset(a);
            let v2 = c.read(a, 2);
            a.barrier(); // keep the -3 increments out of the v2 reads
            c.read_inc(a, 2, -3);
            a.barrier();
            let v3 = c.read(a, 2);
            (v1, v2, v3)
        });
        for (v1, v2, v3) in out {
            assert_eq!(v1, 10);
            assert_eq!(v2, 0);
            assert_eq!(v3, -6);
        }
    }
}
