//! Rooted collectives: reduce-to-root, gather, scatter — the rest of the
//! message-passing surface a library like Global Arrays expects from its
//! MPI companion. All tree-based (`O(log N)` latencies for reduce and
//! scatter; gather is `O(log N)` rounds with growing payloads).

use crate::codec::{Reader, Writer};
use crate::collectives::Elem;
use crate::comm::P2p;

mod op {
    pub const REDUCE: u32 = 8;
    pub const GATHER: u32 = 9;
    pub const SCATTER: u32 = 10;
}

fn mk_tag(opcode: u32, epoch: u32) -> u32 {
    (opcode << 12) | (epoch & 0xFFF)
}

/// Reduce `local` element-wise onto `root` with `combine` (associative &
/// commutative) via a binomial tree. Returns `Some(result)` on the root,
/// `None` elsewhere.
pub fn reduce<T: Elem, F: Fn(T, T) -> T>(p: &mut impl P2p, root: usize, local: &[T], combine: F) -> Option<Vec<T>> {
    let n = p.size();
    let me = p.rank();
    let tag = mk_tag(op::REDUCE, p.next_epoch());
    let vr = (me + n - root) % n; // virtual rank, root at 0
    let mut acc: Vec<T> = local.to_vec();

    // Binomial tree: in round k, ranks with bit k set send to vr - 2^k.
    let mut mask = 1usize;
    while mask < n {
        if vr & mask != 0 {
            let dst = vr - mask;
            let mut w = Writer::with_capacity(acc.len() * 8);
            for &x in &acc {
                w = x.enc(w);
            }
            p.send_to((dst + root) % n, tag, w.finish());
            return None;
        }
        // I receive from vr + mask if that rank exists.
        let src = vr + mask;
        if src < n {
            let body = p.recv_from((src + root) % n, tag);
            let mut r = Reader::new(&body);
            for x in acc.iter_mut() {
                *x = combine(*x, T::dec(&mut r));
            }
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Sum-reduce a `u64` vector to `root`.
pub fn reduce_sum_u64(p: &mut impl P2p, root: usize, local: &[u64]) -> Option<Vec<u64>> {
    reduce(p, root, local, |a, b| a.wrapping_add(b))
}

/// Sum-reduce an `f64` vector to `root`.
pub fn reduce_sum_f64(p: &mut impl P2p, root: usize, local: &[f64]) -> Option<Vec<f64>> {
    reduce(p, root, local, |a, b| a + b)
}

/// Gather every rank's byte block at `root` (binomial tree, blocks
/// concatenated with rank labels). Returns `Some(blocks)` indexed by rank
/// on the root, `None` elsewhere.
pub fn gather(p: &mut impl P2p, root: usize, mine: Vec<u8>) -> Option<Vec<Vec<u8>>> {
    let n = p.size();
    let me = p.rank();
    let tag = mk_tag(op::GATHER, p.next_epoch());
    let vr = (me + n - root) % n;
    // Accumulate (original_rank, block) pairs from my subtree.
    let mut have: Vec<(u32, Vec<u8>)> = vec![(me as u32, mine)];

    let mut mask = 1usize;
    while mask < n {
        if vr & mask != 0 {
            let dst = vr - mask;
            let mut w = Writer::new().u32(have.len() as u32);
            for (rank, block) in &have {
                w = w.u32(*rank).bytes(block);
            }
            p.send_to((dst + root) % n, tag, w.finish());
            return None;
        }
        let src = vr + mask;
        if src < n {
            let body = p.recv_from((src + root) % n, tag);
            let mut r = Reader::new(&body);
            let cnt = r.u32();
            for _ in 0..cnt {
                let rank = r.u32();
                let block = r.bytes().to_vec();
                have.push((rank, block));
            }
        }
        mask <<= 1;
    }
    let mut out = vec![Vec::new(); n];
    for (rank, block) in have {
        out[rank as usize] = block;
    }
    Some(out)
}

/// Scatter `blocks[i]` (provided on the root, `None` elsewhere) to rank
/// `i` via a binomial tree carrying subtree bundles. Returns this rank's
/// block.
pub fn scatter(p: &mut impl P2p, root: usize, blocks: Option<Vec<Vec<u8>>>) -> Vec<u8> {
    let n = p.size();
    let me = p.rank();
    let tag = mk_tag(op::SCATTER, p.next_epoch());
    let vr = (me + n - root) % n;

    // My bundle: (virtual_rank, block) pairs for my whole subtree.
    let mut bundle: Vec<(usize, Vec<u8>)> = if vr == 0 {
        let blocks = blocks.expect("root must supply the blocks");
        assert_eq!(blocks.len(), n, "scatter needs one block per rank");
        blocks.into_iter().enumerate().map(|(r, b)| ((r + n - root) % n, b)).collect()
    } else {
        // Wait for our parent's bundle.
        let parent_vr = vr & (vr - 1); // clear lowest set bit
        let body = p.recv_from((parent_vr + root) % n, tag);
        let mut r = Reader::new(&body);
        let cnt = r.u32();
        (0..cnt)
            .map(|_| {
                let v = r.u32() as usize;
                (v, r.bytes().to_vec())
            })
            .collect()
    };

    // Forward sub-bundles to children: child vr = vr + 2^k for each k
    // above my lowest set bit (root: all k).
    let lowest =
        if vr == 0 { n.next_power_of_two().trailing_zeros() as usize + 1 } else { vr.trailing_zeros() as usize };
    let mut k = 0usize;
    while (1usize << k) < n {
        if vr == 0 || k < lowest {
            let child = vr + (1 << k);
            if child < n && (vr != 0 || child != 0) {
                // Child's subtree: virtual ranks in [child, child + 2^k).
                let (sub, keep): (Vec<_>, Vec<_>) =
                    bundle.into_iter().partition(|(v, _)| *v >= child && *v < child + (1 << k));
                bundle = keep;
                let mut w = Writer::new().u32(sub.len() as u32);
                for (v, b) in &sub {
                    w = w.u32(*v as u32).bytes(b);
                }
                p.send_to((child + root) % n, tag, w.finish());
            }
        }
        k += 1;
    }
    debug_assert_eq!(bundle.len(), 1, "only my own block should remain");
    let (v, block) = bundle.pop().unwrap();
    debug_assert_eq!(v, vr);
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use armci_transport::{Cluster, LatencyModel};

    fn cluster(n: u32) -> Cluster {
        Cluster::builder().nodes(n).procs_per_node(1).latency(LatencyModel::zero()).build()
    }

    #[test]
    fn reduce_to_each_root() {
        for n in 1..=7u32 {
            for root in 0..n as usize {
                let out = cluster(n).run_spmd(move |mb| {
                    let mut c = Comm::new(mb);
                    let local = vec![c.rank() as u64 + 1, 10 * (c.rank() as u64 + 1)];
                    reduce_sum_u64(&mut c, root, &local)
                });
                let total: u64 = (1..=n as u64).sum();
                for (r, res) in out.into_iter().enumerate() {
                    if r == root {
                        assert_eq!(res, Some(vec![total, 10 * total]), "n={n} root={root}");
                    } else {
                        assert_eq!(res, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_f64() {
        let out = cluster(5).run_spmd(|mb| {
            let mut c = Comm::new(mb);
            let mine = [c.rank() as f64];
            reduce_sum_f64(&mut c, 2, &mine)
        });
        assert_eq!(out[2], Some(vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0]));
    }

    #[test]
    fn gather_collects_blocks_at_root() {
        for n in 1..=7u32 {
            for root in [0usize, (n as usize) - 1] {
                let out = cluster(n).run_spmd(move |mb| {
                    let mut c = Comm::new(mb);
                    let mine = vec![c.rank() as u8; c.rank() + 1];
                    gather(&mut c, root, mine)
                });
                for (r, res) in out.into_iter().enumerate() {
                    if r == root {
                        let blocks = res.expect("root gets blocks");
                        for (i, b) in blocks.iter().enumerate() {
                            assert_eq!(b, &vec![i as u8; i + 1], "n={n} root={root}");
                        }
                    } else {
                        assert!(res.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_delivers_right_block() {
        for n in 1..=7u32 {
            for root in 0..n as usize {
                let out = cluster(n).run_spmd(move |mb| {
                    let mut c = Comm::new(mb);
                    let size = c.size();
                    let blocks = (c.rank() == root).then(|| (0..size).map(|r| vec![r as u8, 0xEE]).collect());
                    scatter(&mut c, root, blocks)
                });
                for (r, b) in out.into_iter().enumerate() {
                    assert_eq!(b, vec![r as u8, 0xEE], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn rooted_collectives_compose() {
        let out = cluster(4).run_spmd(|mb| {
            let mut c = Comm::new(mb);
            let size = c.size();
            let mine0 = [c.rank() as u64];
            let sum = reduce_sum_u64(&mut c, 0, &mine0);
            let blocks = sum.map(|s| (0..size).map(|r| vec![(s[0] + r as u64) as u8]).collect());
            let mine = scatter(&mut c, 0, blocks);
            let gathered = gather(&mut c, 3, mine.clone());
            (mine, gathered.is_some())
        });
        // sum = 6; rank r receives [6 + r].
        for (r, (mine, at_root)) in out.into_iter().enumerate() {
            assert_eq!(mine, vec![6 + r as u8]);
            assert_eq!(at_root, r == 3);
        }
    }
}
