//! Minimal byte-level message framing.
//!
//! Protocol messages in this workspace are hand-framed little-endian
//! records (as GM/ARMCI headers were), not serde-serialized: the formats
//! are tiny, fixed, and on the latency-critical path. [`Writer`] builds a
//! message body; [`Reader`] consumes one, panicking on truncation (a
//! malformed frame is a protocol bug, never recoverable input).

/// Incrementally builds a little-endian message body.
#[derive(Default, Debug)]
pub struct Writer(Vec<u8>);

impl Writer {
    /// Start an empty body.
    pub fn new() -> Self {
        Writer(Vec::new())
    }

    /// Start with capacity for `n` bytes.
    pub fn with_capacity(n: usize) -> Self {
        Writer(Vec::with_capacity(n))
    }

    /// Finish and return the body.
    pub fn finish(self) -> Vec<u8> {
        self.0
    }

    /// Append a `u8`.
    pub fn u8(mut self, v: u8) -> Self {
        self.0.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `i64`.
    pub fn i64(self, v: i64) -> Self {
        self.u64(v as u64)
    }

    /// Append an `f64` as its IEEE-754 bits.
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self = self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
        self
    }

    /// Append a `u64` slice with a `u32` length prefix.
    pub fn u64_slice(mut self, v: &[u64]) -> Self {
        self = self.u32(v.len() as u32);
        for &x in v {
            self.0.extend_from_slice(&x.to_le_bytes());
        }
        self
    }
}

/// Builds a little-endian message body *into a borrowed buffer* — the
/// zero-allocation counterpart of [`Writer`], used with pooled encode
/// buffers (the caller owns and reuses the `Vec`).
///
/// Method-for-method identical to [`Writer`], so an encoder can be written
/// once against either interface.
#[derive(Debug)]
pub struct BufWriter<'a>(&'a mut Vec<u8>);

impl<'a> BufWriter<'a> {
    /// Append to `buf` (existing contents are kept; callers clear first
    /// when reusing a pooled buffer).
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        BufWriter(buf)
    }

    /// Append a `u8`.
    pub fn u8(self, v: u8) -> Self {
        self.0.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(self, v: u32) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `i64`.
    pub fn i64(self, v: i64) -> Self {
        self.u64(v as u64)
    }

    /// Append an `f64` as its IEEE-754 bits.
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn bytes(self, v: &[u8]) -> Self {
        let s = self.u32(v.len() as u32);
        s.0.extend_from_slice(v);
        s
    }

    /// Append a `u64` slice with a `u32` length prefix.
    pub fn u64_slice(self, v: &[u64]) -> Self {
        let s = self.u32(v.len() as u32);
        for &x in v {
            s.0.extend_from_slice(&x.to_le_bytes());
        }
        s
    }

    /// Append an `f64` slice with a `u32` length prefix.
    pub fn f64_slice(self, v: &[f64]) -> Self {
        let s = self.u32(v.len() as u32);
        for &x in v {
            s.0.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        s
    }
}

/// Consumes a little-endian message body produced by [`Writer`].
///
/// # Panics
/// Every accessor panics on truncated input: frames are produced by this
/// workspace's own protocols, so truncation is a bug, not bad input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a message body.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> i64 {
        self.u64() as i64
    }

    /// Read an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> &'a [u8] {
        let n = self.u32() as usize;
        self.take(n)
    }

    /// Read exactly `n` raw bytes (no length prefix) — for borrowing a
    /// fixed-stride region (e.g. an array of records) out of the body.
    pub fn raw(&mut self, n: usize) -> &'a [u8] {
        self.take(n)
    }

    /// Read a length-prefixed `u64` vector.
    pub fn u64_vec(&mut self) -> Vec<u64> {
        let n = self.u32() as usize;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let body = Writer::new()
            .u8(7)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX - 1)
            .i64(-42)
            .f64(3.5)
            .bytes(b"hello")
            .u64_slice(&[1, 2, 3])
            .finish();
        let mut r = Reader::new(&body);
        assert_eq!(r.u8(), 7);
        assert_eq!(r.u32(), 0xDEAD_BEEF);
        assert_eq!(r.u64(), u64::MAX - 1);
        assert_eq!(r.i64(), -42);
        assert_eq!(r.f64(), 3.5);
        assert_eq!(r.bytes(), b"hello");
        assert_eq!(r.u64_vec(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_collections() {
        let body = Writer::new().bytes(&[]).u64_slice(&[]).finish();
        let mut r = Reader::new(&body);
        assert!(r.bytes().is_empty());
        assert!(r.u64_vec().is_empty());
    }

    #[test]
    #[should_panic]
    fn truncated_read_panics() {
        let body = Writer::new().u32(1).finish();
        let mut r = Reader::new(&body);
        let _ = r.u64();
    }

    #[test]
    fn nan_f64_roundtrips_bitwise() {
        let body = Writer::new().f64(f64::NAN).finish();
        let mut r = Reader::new(&body);
        assert!(r.f64().is_nan());
    }

    #[test]
    fn buf_writer_matches_writer() {
        let owned = Writer::new()
            .u8(7)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX - 1)
            .i64(-42)
            .f64(3.5)
            .bytes(b"hello")
            .u64_slice(&[1, 2, 3])
            .finish();
        let mut buf = vec![0xFF]; // stale pooled contents
        buf.clear();
        BufWriter::new(&mut buf)
            .u8(7)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX - 1)
            .i64(-42)
            .f64(3.5)
            .bytes(b"hello")
            .u64_slice(&[1, 2, 3]);
        assert_eq!(buf, owned);
    }

    #[test]
    fn f64_slice_is_bytewise_f64s() {
        let mut buf = Vec::new();
        BufWriter::new(&mut buf).f64_slice(&[1.5, -2.5]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), 2);
        assert_eq!(r.f64(), 1.5);
        assert_eq!(r.f64(), -2.5);
    }
}
