//! Processor groups: ordered subsets of the world ranks, with the
//! collectives as methods.
//!
//! A [`Group`] is the communicator of this library. It owns the
//! translation between *group ranks* (positions `0..len()` inside the
//! group) and *world ranks* (positions in the underlying [`P2p`]
//! endpoint), and every collective is a method scoped to the group's
//! members: `group.barrier(p)`, `group.allreduce_sum_u64(p, v)`, and so
//! on. The world itself is just the trivial group ([`Group::world`]), so
//! one implementation serves both scopes — the historical free functions
//! (`barrier(p)`, `allreduce(p, ...)`) survive as deprecated shims over
//! `Group::world`.
//!
//! Group construction is **communication-free**, unlike `MPI_Comm_split`:
//! [`Group::split`] takes a pure color function every member evaluates
//! over the whole parent, so all members derive identical member lists
//! without a message. This matches how the paper's runtime uses groups —
//! they are derived from topology or from a statically known work
//! decomposition, not negotiated.
//!
//! ## Tag scoping for overlapping groups
//!
//! Collective tags have 12 bits of epoch (see `collectives::mk_tag`).
//! Two *overlapping* groups must not produce colliding `(src, dst, tag)`
//! triples while both have collectives in flight, so every subset group
//! keeps its own epoch counter seeded with a 12-bit fingerprint of its
//! member list. Groups that advance their epochs at different absolute
//! rates can in principle still collide after thousands of collectives
//! (exactly the pre-existing mod-4096 wrap caveat); per-pair FIFO
//! delivery keeps this theoretical. The world group delegates to the
//! endpoint's own epoch counter so its wire traffic stays bit-identical
//! with the historical free functions.

use std::cell::Cell;
use std::time::Instant;

use crate::collectives::{self, Elem};
use crate::comm::{CommError, P2p};

/// An ordered subset of world ranks — the communicator handle.
///
/// Position in the member list *is* the group rank: `ranks()[g]` is the
/// world rank of group rank `g`. Member lists are duplicate-free and
/// nonempty by construction.
#[derive(Clone, Debug)]
pub struct Group {
    ranks: Vec<u32>,
    world: bool,
    /// Per-group collective epoch for subset groups, seeded with a
    /// 12-bit fingerprint of the member list (the world group uses the
    /// endpoint's counter instead; see module docs).
    epoch: Cell<u32>,
}

/// FNV-1a over the member list, folded to the 12 epoch bits.
fn fingerprint(ranks: &[u32]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &r in ranks {
        for b in r.to_le_bytes() {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
    }
    (h ^ (h >> 12)) & 0xFFF
}

impl Group {
    /// The group of all `n` world ranks, in rank order.
    pub fn world(n: usize) -> Group {
        assert!(n >= 1, "empty world group");
        Group { ranks: (0..n as u32).collect(), world: true, epoch: Cell::new(0) }
    }

    /// A group from an explicit ordered member list of world ranks.
    ///
    /// The result is always a *subset* group, even for the member list
    /// `0..n` in order — only [`Group::world`] knows the world size, so
    /// only it can claim world scope (a prefix of a larger world must not
    /// borrow the endpoint's epoch counter).
    ///
    /// # Panics
    /// Panics on an empty list or duplicate members.
    pub fn from_ranks(ranks: &[usize]) -> Group {
        assert!(!ranks.is_empty(), "empty group");
        let ranks: Vec<u32> = ranks.iter().map(|&r| r as u32).collect();
        let mut seen = ranks.clone();
        seen.sort_unstable();
        assert!(seen.windows(2).all(|w| w[0] != w[1]), "duplicate rank in group");
        let fp = fingerprint(&ranks);
        Group { ranks, world: false, epoch: Cell::new(fp) }
    }

    /// The subgroup at the given *group-rank* positions of `self`,
    /// in the given order.
    pub fn subset(&self, positions: &[usize]) -> Group {
        let world: Vec<usize> = positions.iter().map(|&g| self.world_rank(g)).collect();
        Group::from_ranks(&world)
    }

    /// The surviving subgroup of `self` under a membership view: every
    /// member still alive in `view`, in parent order. Like
    /// [`Group::split`], this is communication-free — survivor views
    /// converge (the alive set is a pure function of the evicted set, see
    /// `armci_proto::MembershipView`), so every survivor derives the
    /// identical shrunk group without a message.
    ///
    /// # Panics
    /// Panics if no member survives — callers are members, so a survivor
    /// calling on its own group always keeps at least itself.
    pub fn shrink(&self, view: &armci_proto::MembershipView) -> Group {
        let members: Vec<usize> = self.ranks().filter(|&r| view.alive.contains(r)).collect();
        Group::from_ranks(&members)
    }

    /// Split `self` by a pure color function over *world ranks*: the
    /// returned group holds every member sharing `color(my world rank)`,
    /// in parent order. Every member evaluates `color` over the whole
    /// parent, so no communication happens and all members of one color
    /// derive identical groups (the function must be rank-pure — same
    /// result on every caller).
    pub fn split(&self, my_world_rank: usize, color: impl Fn(usize) -> u64) -> Group {
        assert!(self.contains(my_world_rank), "split caller not in parent group");
        let mine = color(my_world_rank);
        let members: Vec<usize> = self.ranks.iter().map(|&r| r as usize).filter(|&r| color(r) == mine).collect();
        Group::from_ranks(&members)
    }

    /// Number of members.
    #[allow(clippy::len_without_is_empty)] // groups are nonempty by construction
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True for the full world group (members `0..n` in order).
    pub fn is_world(&self) -> bool {
        self.world
    }

    /// The ordered member list, as world ranks.
    pub fn ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranks.iter().map(|&r| r as usize)
    }

    /// World rank of group rank `g`.
    pub fn world_rank(&self, g: usize) -> usize {
        self.ranks[g] as usize
    }

    /// Group rank of world rank `w`, if a member.
    pub fn group_rank(&self, w: usize) -> Option<usize> {
        if self.world {
            return (w < self.ranks.len()).then_some(w);
        }
        self.ranks.iter().position(|&r| r as usize == w)
    }

    /// True if world rank `w` is a member.
    pub fn contains(&self, w: usize) -> bool {
        self.group_rank(w).is_some()
    }

    /// View a world-scoped endpoint as a group-scoped one: ranks, sizes
    /// and collective epochs become group-relative. This is how every
    /// group collective runs, and it is public so runtimes driving the
    /// `armci-proto` engines directly (the ARMCI combined barrier) can
    /// reuse the same translation and tagging.
    ///
    /// # Panics
    /// Panics if the endpoint's world rank is not a member.
    pub fn scoped<'a, P: P2p>(&'a self, p: &'a mut P) -> Scoped<'a, P> {
        let me = self.group_rank(p.rank()).expect("caller is not a member of this group");
        Scoped { group: self, inner: p, me }
    }

    // ---- collectives -------------------------------------------------

    /// Dissemination barrier over the members (`ceil(log2 len)` rounds).
    pub fn barrier(&self, p: &mut impl P2p) {
        collectives::barrier_impl(&mut self.scoped(p));
    }

    /// Binary-exchange (pairwise XOR) barrier over the members — the
    /// paper's `MPI_Barrier()` pattern.
    pub fn barrier_binary_exchange(&self, p: &mut impl P2p) {
        collectives::barrier_binary_exchange_impl(&mut self.scoped(p));
    }

    /// Fallible [`Group::barrier_binary_exchange`] with a deadline.
    pub fn try_barrier_binary_exchange(&self, p: &mut impl P2p, deadline: Instant) -> Result<(), CommError> {
        collectives::try_barrier_binary_exchange_impl(&mut self.scoped(p), deadline)
    }

    /// Element-wise allreduce over the members by recursive doubling.
    pub fn allreduce<T: Elem, F: Fn(T, T) -> T>(&self, p: &mut impl P2p, local: &mut [T], combine: F) {
        collectives::allreduce_impl(&mut self.scoped(p), local, combine);
    }

    /// Fallible [`Group::allreduce`] with a deadline.
    pub fn try_allreduce<T: Elem, F: Fn(T, T) -> T>(
        &self,
        p: &mut impl P2p,
        local: &mut [T],
        combine: F,
        deadline: Instant,
    ) -> Result<(), CommError> {
        collectives::try_allreduce_impl(&mut self.scoped(p), local, combine, deadline)
    }

    /// Sum-allreduce of a `u64` vector over the members.
    pub fn allreduce_sum_u64(&self, p: &mut impl P2p, local: &mut [u64]) {
        self.allreduce(p, local, |a, b| a.wrapping_add(b));
    }

    /// Fallible [`Group::allreduce_sum_u64`] with a deadline.
    pub fn try_allreduce_sum_u64(
        &self,
        p: &mut impl P2p,
        local: &mut [u64],
        deadline: Instant,
    ) -> Result<(), CommError> {
        self.try_allreduce(p, local, |a, b| a.wrapping_add(b), deadline)
    }

    /// Sum-allreduce of an `f64` vector over the members.
    pub fn allreduce_sum_f64(&self, p: &mut impl P2p, local: &mut [f64]) {
        self.allreduce(p, local, |a, b| a + b);
    }

    /// Max-allreduce of an `f64` vector over the members.
    pub fn allreduce_max_f64(&self, p: &mut impl P2p, local: &mut [f64]) {
        self.allreduce(p, local, f64::max);
    }

    /// Inclusive prefix reduction over the members (group-rank order).
    pub fn scan<T: Elem, F: Fn(T, T) -> T>(&self, p: &mut impl P2p, local: &mut [T], combine: F) {
        collectives::scan_impl(&mut self.scoped(p), local, combine);
    }

    /// Inclusive prefix sum of a `u64` vector over the members.
    pub fn scan_sum_u64(&self, p: &mut impl P2p, local: &mut [u64]) {
        self.scan(p, local, |a, b| a.wrapping_add(b));
    }

    /// Binomial-tree broadcast from group rank `root` to the members.
    pub fn bcast(&self, p: &mut impl P2p, root: usize, data: Vec<u8>) -> Vec<u8> {
        collectives::bcast_impl(&mut self.scoped(p), root, data)
    }

    /// Ring allgather over the members, indexed by group rank.
    pub fn allgather(&self, p: &mut impl P2p, mine: Vec<u8>) -> Vec<Vec<u8>> {
        collectives::allgather_impl(&mut self.scoped(p), mine)
    }
}

/// A group-scoped view of a world-scoped [`P2p`] endpoint (see
/// [`Group::scoped`]): `rank()`/`size()` are group-relative, sends and
/// receives translate group ranks to world ranks, and `next_epoch` draws
/// from the group's own fingerprint-seeded counter for subset groups (the
/// world group passes through to the endpoint's counter).
pub struct Scoped<'a, P: P2p> {
    group: &'a Group,
    inner: &'a mut P,
    me: usize,
}

impl<P: P2p> P2p for Scoped<'_, P> {
    fn rank(&self) -> usize {
        self.me
    }

    fn size(&self) -> usize {
        self.group.len()
    }

    fn send_to(&mut self, dst: usize, tag: u32, body: Vec<u8>) {
        self.inner.send_to(self.group.world_rank(dst), tag, body);
    }

    fn recv_from(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.inner.recv_from(self.group.world_rank(src), tag)
    }

    fn recv_from_deadline(&mut self, src: usize, tag: u32, deadline: Instant) -> Result<Vec<u8>, CommError> {
        self.inner.recv_from_deadline(self.group.world_rank(src), tag, deadline)
    }

    fn next_epoch(&mut self) -> u32 {
        if self.group.world {
            return self.inner.next_epoch();
        }
        let e = self.group.epoch.get();
        self.group.epoch.set(e.wrapping_add(1));
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use armci_transport::{Cluster, LatencyModel};

    fn cluster(n: u32) -> Cluster {
        Cluster::builder().nodes(n).procs_per_node(1).latency(LatencyModel::zero()).build()
    }

    #[test]
    fn world_detection_and_translation() {
        let w = Group::world(4);
        assert!(w.is_world());
        assert_eq!(w.len(), 4);
        assert_eq!(w.group_rank(3), Some(3));

        let g = Group::from_ranks(&[4, 1, 7]);
        assert!(!g.is_world());
        assert_eq!(g.len(), 3);
        assert_eq!(g.world_rank(0), 4);
        assert_eq!(g.group_rank(7), Some(2));
        assert_eq!(g.group_rank(0), None);
        assert!(g.contains(1) && !g.contains(2));

        // Only `world()` claims world scope: from_ranks over 0..n in
        // order could be a prefix of a larger world.
        assert!(!Group::from_ranks(&[0, 1, 2]).is_world());
    }

    #[test]
    #[should_panic(expected = "duplicate rank")]
    fn duplicate_members_rejected() {
        Group::from_ranks(&[0, 2, 2]);
    }

    #[test]
    fn split_and_subset_derive_consistent_groups() {
        let w = Group::world(6);
        // Even/odd split: every even member computes the same group.
        let evens = w.split(2, |r| (r % 2) as u64);
        assert_eq!(evens.ranks().collect::<Vec<_>>(), vec![0, 2, 4]);
        let odds = w.split(3, |r| (r % 2) as u64);
        assert_eq!(odds.ranks().collect::<Vec<_>>(), vec![1, 3, 5]);
        // Subset by group-rank positions.
        let g = evens.subset(&[2, 0]);
        assert_eq!(g.ranks().collect::<Vec<_>>(), vec![4, 0]);
    }

    #[test]
    fn overlapping_groups_have_distinct_fingerprints() {
        let a = Group::from_ranks(&[0, 1, 2, 3]);
        let b = Group::from_ranks(&[2, 3, 4, 5]);
        assert_ne!(a.epoch.get(), b.epoch.get(), "fingerprint epoch seeds collide for the canonical overlap pair");
        assert_eq!(Group::world(4).epoch.get(), 0);
    }

    #[test]
    fn group_allreduce_sums_members_only() {
        let out = cluster(5).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let me = comm.rank();
            let g = Group::world(5).split(me, |r| u64::from(r % 2 == 0));
            let mut v = [me as u64 + 1];
            g.allreduce_sum_u64(&mut comm, &mut v);
            v[0]
        });
        // Evens {0,2,4} sum to 1+3+5=9; odds {1,3} to 2+4=6.
        assert_eq!(out, vec![9, 6, 9, 6, 9]);
    }

    #[test]
    fn group_barrier_and_bcast_scope_to_members() {
        let out = cluster(6).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let me = comm.rank();
            let g = Group::world(6).split(me, |r| u64::from(r >= 2));
            g.barrier(&mut comm);
            g.barrier_binary_exchange(&mut comm);
            // Root is group rank 0 = the lowest member.
            let data = if g.group_rank(me) == Some(0) { vec![me as u8] } else { Vec::new() };
            g.bcast(&mut comm, 0, data)
        });
        assert_eq!(out, vec![vec![0], vec![0], vec![2], vec![2], vec![2], vec![2]]);
    }

    #[test]
    fn group_allgather_indexes_by_group_rank() {
        let out = cluster(4).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let me = comm.rank();
            let g = Group::from_ranks(&[3, 1, 0, 2]);
            g.allgather(&mut comm, vec![me as u8])
        });
        for v in out {
            assert_eq!(v, vec![vec![3], vec![1], vec![0], vec![2]]);
        }
    }

    #[test]
    fn overlapping_groups_interleave_without_crosstalk() {
        // Ranks 2 and 3 belong to both groups and run both collectives;
        // distinct fingerprint-seeded epochs keep the tags apart even
        // though the underlying endpoint epochs diverge across members.
        let out = cluster(6).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let me = comm.rank();
            let a = Group::from_ranks(&[0, 1, 2, 3]);
            let b = Group::from_ranks(&[2, 3, 4, 5]);
            let mut acc = Vec::new();
            for round in 0..10u64 {
                if a.contains(me) {
                    let mut v = [me as u64 + round];
                    a.allreduce_sum_u64(&mut comm, &mut v);
                    acc.push(v[0]);
                }
                if b.contains(me) {
                    let mut v = [me as u64 + round];
                    b.allreduce_sum_u64(&mut comm, &mut v);
                    acc.push(v[0]);
                }
            }
            acc
        });
        for (me, acc) in out.into_iter().enumerate() {
            let mut want = Vec::new();
            for round in 0..10u64 {
                if me <= 3 {
                    // contributions of ranks 0+1+2+3
                    want.push(6 + 4 * round);
                }
                if me >= 2 {
                    want.push(2 + 3 + 4 + 5 + 4 * round);
                }
            }
            assert_eq!(acc, want, "rank {me}");
        }
    }

    #[test]
    fn scan_over_subset_prefixes_in_group_order() {
        let out = cluster(5).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let me = comm.rank();
            let g = Group::from_ranks(&[4, 2, 0]);
            if let Some(_gr) = g.group_rank(me) {
                let mut v = [me as u64];
                g.scan_sum_u64(&mut comm, &mut v);
                Some(v[0])
            } else {
                None
            }
        });
        // Group order 4, 2, 0 → prefixes 4, 6, 6.
        assert_eq!(out, vec![Some(6), None, Some(6), None, Some(4)]);
    }
}
