//! MPI-style collectives over any [`P2p`] implementation.
//!
//! The public surface lives on [`crate::Group`] — collectives are methods
//! on a group handle (`group.barrier(p)`), and the world is the trivial
//! group. This module holds the algorithm implementations, which run over
//! an already-scoped endpoint (see [`crate::group::Scoped`]).
//!
//! Two barrier algorithms are provided because the paper uses both roles:
//!
//! * [`Group::barrier_binary_exchange`](crate::Group::barrier_binary_exchange)
//!   — the pairwise-exchange (hypercube) algorithm the paper attributes to
//!   `MPI_Barrier()` (§3.1.2): in each of `log2(N)` phases a process
//!   exchanges a message with `me XOR x` and the phases' messages overlap,
//!   so the barrier costs `log2(N)` one-way latencies. Non-powers of two
//!   are handled by folding the surplus ranks onto partners in the
//!   power-of-two core (two extra latencies).
//! * [`Group::barrier`](crate::Group::barrier) — the dissemination
//!   algorithm, which handles any `N` in `ceil(log2 N)` rounds without the
//!   fold; used where an algorithm-agnostic barrier is all that is needed.
//!
//! [`Group::allreduce`](crate::Group::allreduce) is the recursive-doubling
//! exchange of Figure 2 of the paper — the "all-scatter/all-to-all" step
//! that distributes and sums the `op_init[]` arrays in `ARMCI_Barrier()` —
//! generalized to arbitrary element types and non-power-of-two process
//! counts.

use std::time::{Duration, Instant};

use armci_proto::{Exchange, XchgAction, XchgEvent, XchgMsg};

use crate::codec::{Reader, Writer};
use crate::comm::{CommError, P2p};

/// A deadline far enough out to mean "block forever": the infallible
/// collectives delegate to their `try_` twins with this, so both spellings
/// share one implementation (and one message structure).
pub(crate) fn far_future() -> Instant {
    Instant::now() + Duration::from_secs(60 * 60 * 24 * 365)
}

/// Collective op codes, mixed into tags (see [`mk_tag`]).
mod op {
    pub const BARRIER_DISS: u32 = 1;
    pub const BARRIER_BX: u32 = 2;
    pub const BCAST: u32 = 3;
    pub const ALLREDUCE: u32 = 4;
    pub const ALLGATHER: u32 = 5;
    pub const SCAN: u32 = 6;
    pub const HIER_BX: u32 = 7;
}

/// Compose a collective tag from an op code and the caller's epoch.
///
/// The epoch (mod 4096) guards against a fast rank's *next* collective
/// being matched by a slow rank's *current* one; per-pair FIFO delivery
/// makes collisions after wrap-around impossible in practice because at
/// most a handful of collectives can be in flight between a pair. Subset
/// groups seed their epoch counters with a member-list fingerprint so
/// overlapping groups occupy different epoch windows (see
/// [`crate::group`]).
fn mk_tag(opcode: u32, epoch: u32) -> u32 {
    (opcode << 12) | (epoch & 0xFFF)
}

/// Tag of the allreduce collective for a given epoch. Exposed so the
/// ARMCI runtime's combined barrier — which drives the `armci-proto`
/// engine directly — stays wire-identical with msglib's allreduce.
pub fn allreduce_tag(epoch: u32) -> u32 {
    mk_tag(op::ALLREDUCE, epoch)
}

/// Tag of the binary-exchange barrier for a given epoch (see
/// [`allreduce_tag`]).
pub fn barrier_bx_tag(epoch: u32) -> u32 {
    mk_tag(op::BARRIER_BX, epoch)
}

/// Tag of the hierarchical barrier's inter-domain leg for a given epoch
/// (see [`allreduce_tag`]; the ARMCI runtime drives the
/// `armci-proto` `HierBarrier` engine directly).
pub fn hier_bx_tag(epoch: u32) -> u32 {
    mk_tag(op::HIER_BX, epoch)
}

/// Drive one [`Exchange`] schedule to completion over a blocking [`P2p`]
/// endpoint: perform emitted sends, wait for the single message the
/// schedule expects next, and fold received bodies into `state` at their
/// in-order consume points. The engine owns the schedule (partners,
/// rounds, non-power-of-two folding); this loop owns bytes and blocking.
fn drive_exchange<S: ?Sized>(
    p: &mut impl P2p,
    tag: u32,
    deadline: Instant,
    state: &mut S,
    payload: impl Fn(&S) -> Vec<u8>,
    absorb: impl Fn(&mut S, XchgMsg, &[u8]),
) -> Result<(), CommError> {
    let mut ex = Exchange::new(p.size(), p.rank());
    let mut acts = Vec::new();
    ex.poll(XchgEvent::Start, &mut acts);
    let mut inbox: Option<(XchgMsg, Vec<u8>)> = None;
    loop {
        for a in acts.drain(..) {
            match a {
                XchgAction::Send { to, .. } => p.send_to(to, tag, payload(state)),
                XchgAction::Consume(m) => {
                    let (km, body) = inbox.take().expect("consume without a received message");
                    debug_assert_eq!(km, m, "blocking driver consumed out of order");
                    absorb(state, m, &body);
                }
            }
        }
        if ex.is_complete() {
            return Ok(());
        }
        let (from, kind) = ex.expected_recv().expect("blocking exchange driver stalled");
        let body = p.recv_from_deadline(from, tag, deadline)?;
        inbox = Some((kind, body));
        ex.poll(XchgEvent::Recv(kind), &mut acts);
    }
}

/// Dissemination barrier over an already-scoped endpoint.
pub(crate) fn barrier_impl(p: &mut impl P2p) {
    let n = p.size();
    if n == 1 {
        return;
    }
    let me = p.rank();
    let tag = mk_tag(op::BARRIER_DISS, p.next_epoch());
    let mut k = 1;
    while k < n {
        let to = (me + k) % n;
        let from = (me + n - k) % n;
        p.send_to(to, tag, Vec::new());
        let _ = p.recv_from(from, tag);
        k <<= 1;
    }
}

/// Binary-exchange barrier over an already-scoped endpoint.
pub(crate) fn barrier_binary_exchange_impl(p: &mut impl P2p) {
    try_barrier_binary_exchange_impl(p, far_future()).expect("transport disconnected during barrier")
}

/// Fallible binary-exchange barrier over an already-scoped endpoint.
/// Sends are identical to the infallible barrier — only the receive waits
/// differ — so the two spellings are indistinguishable on the wire.
pub(crate) fn try_barrier_binary_exchange_impl(p: &mut impl P2p, deadline: Instant) -> Result<(), CommError> {
    if p.size() == 1 {
        return Ok(());
    }
    let tag = barrier_bx_tag(p.next_epoch());
    // Schedule-only: every message is empty, nothing to absorb.
    drive_exchange(p, tag, deadline, &mut (), |_| Vec::new(), |_, _, _| ())
}

/// Element codec for allreduce vectors.
pub trait Elem: Copy {
    /// Append `self` to a message body.
    fn enc(self, w: Writer) -> Writer;
    /// Read one element from a message body.
    fn dec(r: &mut Reader<'_>) -> Self;
}

impl Elem for u64 {
    fn enc(self, w: Writer) -> Writer {
        w.u64(self)
    }
    fn dec(r: &mut Reader<'_>) -> Self {
        r.u64()
    }
}

impl Elem for i64 {
    fn enc(self, w: Writer) -> Writer {
        w.i64(self)
    }
    fn dec(r: &mut Reader<'_>) -> Self {
        r.i64()
    }
}

impl Elem for f64 {
    fn enc(self, w: Writer) -> Writer {
        w.f64(self)
    }
    fn dec(r: &mut Reader<'_>) -> Self {
        r.f64()
    }
}

fn enc_vec<T: Elem>(v: &[T]) -> Vec<u8> {
    let mut w = Writer::with_capacity(v.len() * 8);
    for &x in v {
        w = x.enc(w);
    }
    w.finish()
}

fn dec_combine<T: Elem>(local: &mut [T], body: &[u8], combine: &impl Fn(T, T) -> T) {
    let mut r = Reader::new(body);
    for x in local.iter_mut() {
        *x = combine(*x, T::dec(&mut r));
    }
    debug_assert_eq!(r.remaining(), 0, "allreduce vector length mismatch");
}

/// Allreduce by recursive doubling over an already-scoped endpoint.
pub(crate) fn allreduce_impl<T: Elem, F: Fn(T, T) -> T>(p: &mut impl P2p, local: &mut [T], combine: F) {
    try_allreduce_impl(p, local, combine, far_future()).expect("transport disconnected during allreduce")
}

/// Fallible allreduce over an already-scoped endpoint. On `Err`, `local`
/// holds a partial reduction and must not be used.
pub(crate) fn try_allreduce_impl<T: Elem, F: Fn(T, T) -> T>(
    p: &mut impl P2p,
    local: &mut [T],
    combine: F,
    deadline: Instant,
) -> Result<(), CommError> {
    if p.size() == 1 {
        return Ok(());
    }
    let tag = allreduce_tag(p.next_epoch());
    drive_exchange(
        p,
        tag,
        deadline,
        local,
        |l| enc_vec(l),
        |l, msg, body| match msg {
            // Check-ins and round payloads fold in element-wise...
            XchgMsg::Enter | XchgMsg::Round(_) => dec_combine(l, body, &combine),
            // ...while the release carries the final totals back to the
            // surplus rank and replaces.
            XchgMsg::Exit => {
                let mut r = Reader::new(body);
                for x in l.iter_mut() {
                    *x = T::dec(&mut r);
                }
            }
        },
    )
}

/// Inclusive prefix reduction by Hillis–Steele doubling over an
/// already-scoped endpoint.
pub(crate) fn scan_impl<T: Elem, F: Fn(T, T) -> T>(p: &mut impl P2p, local: &mut [T], combine: F) {
    let n = p.size();
    if n == 1 {
        return;
    }
    let me = p.rank();
    let tag = mk_tag(op::SCAN, p.next_epoch());
    let mut k = 1usize;
    while k < n {
        // Send my current prefix downstream before folding the upstream
        // contribution in (the value sent must cover ranks me-k+1..=me of
        // the original inputs, which it does by induction).
        if me + k < n {
            p.send_to(me + k, tag, enc_vec(local));
        }
        if me >= k {
            let body = p.recv_from(me - k, tag);
            let mut r = Reader::new(&body);
            for x in local.iter_mut() {
                // Prefix order: upstream ⊕ mine.
                *x = combine(T::dec(&mut r), *x);
            }
        }
        k <<= 1;
    }
}

/// Binomial-tree broadcast over an already-scoped endpoint.
pub(crate) fn bcast_impl(p: &mut impl P2p, root: usize, data: Vec<u8>) -> Vec<u8> {
    let n = p.size();
    if n == 1 {
        return data;
    }
    let me = p.rank();
    let tag = mk_tag(op::BCAST, p.next_epoch());
    let vr = (me + n - root) % n; // virtual rank with root at 0

    let mut have: Option<Vec<u8>> = if vr == 0 { Some(data) } else { None };
    let mut mask = 1;
    while mask < n {
        if vr < mask {
            let dst = vr + mask;
            if dst < n {
                let payload = have.as_ref().expect("binomial bcast invariant").clone();
                p.send_to((dst + root) % n, tag, payload);
            }
        } else if vr < 2 * mask && have.is_none() {
            let src = vr - mask;
            have = Some(p.recv_from((src + root) % n, tag));
        }
        mask <<= 1;
    }
    have.expect("every rank receives in a binomial bcast")
}

/// Ring allgather over an already-scoped endpoint.
pub(crate) fn allgather_impl(p: &mut impl P2p, mine: Vec<u8>) -> Vec<Vec<u8>> {
    let n = p.size();
    let me = p.rank();
    let tag = mk_tag(op::ALLGATHER, p.next_epoch());
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
    out[me] = mine;
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;
    // Step k forwards the block that originated k hops to the left.
    for k in 0..n.saturating_sub(1) {
        let send_idx = (me + n - k) % n;
        let body = Writer::new().u32(send_idx as u32).bytes(&out[send_idx]).finish();
        p.send_to(right, tag, body);
        let got = p.recv_from(left, tag);
        let mut r = Reader::new(&got);
        let idx = r.u32() as usize;
        out[idx] = r.bytes().to_vec();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::group::Group;
    use armci_transport::{Cluster, LatencyModel};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn cluster(n: u32) -> Cluster {
        Cluster::builder().nodes(n).procs_per_node(1).latency(LatencyModel::zero()).build()
    }

    fn check_barrier_semantics(n: u32, which: fn(&Group, &mut Comm)) {
        let before = Arc::new(AtomicUsize::new(0));
        let b2 = before.clone();
        let out = cluster(n).run_spmd(move |mb| {
            let mut comm = Comm::new(mb);
            let world = Group::world(comm.size());
            b2.fetch_add(1, Ordering::SeqCst);
            which(&world, &mut comm);
            // After the barrier, every rank must have checked in.
            b2.load(Ordering::SeqCst)
        });
        for seen in out {
            assert_eq!(seen, n as usize, "barrier let a rank through early (n={n})");
        }
    }

    #[test]
    fn dissemination_barrier_all_sizes() {
        for n in 1..=9 {
            check_barrier_semantics(n, |g, c| g.barrier(c));
        }
    }

    #[test]
    fn binary_exchange_barrier_all_sizes() {
        for n in 1..=9 {
            check_barrier_semantics(n, |g, c| g.barrier_binary_exchange(c));
        }
    }

    #[test]
    fn repeated_barriers_do_not_cross_talk() {
        let out = cluster(4).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let world = Group::world(comm.size());
            for _ in 0..50 {
                world.barrier_binary_exchange(&mut comm);
            }
            comm.rank()
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn allreduce_sum_matches_expected() {
        for n in 1..=9u32 {
            let out = cluster(n).run_spmd(move |mb| {
                let mut comm = Comm::new(mb);
                let world = Group::world(comm.size());
                let me = comm.rank() as u64;
                // v[i] = rank * 10 + i; column sums are sum(rank)*.. per i.
                let mut v = vec![me * 10, me * 10 + 1, me * 10 + 2];
                world.allreduce_sum_u64(&mut comm, &mut v);
                v
            });
            let nn = n as u64;
            let ranksum: u64 = (0..nn).sum();
            let expect = vec![ranksum * 10, ranksum * 10 + nn, ranksum * 10 + 2 * nn];
            for v in out {
                assert_eq!(v, expect, "n={n}");
            }
        }
    }

    #[test]
    fn allreduce_max_f64_picks_max() {
        let out = cluster(5).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let world = Group::world(comm.size());
            let mut v = vec![comm.rank() as f64, -(comm.rank() as f64)];
            world.allreduce_max_f64(&mut comm, &mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![4.0, 0.0]);
        }
    }

    #[test]
    fn scan_prefix_sums() {
        for n in 1..=9u32 {
            let out = cluster(n).run_spmd(|mb| {
                let mut comm = Comm::new(mb);
                let world = Group::world(comm.size());
                let mut v = vec![comm.rank() as u64 + 1, 1u64];
                world.scan_sum_u64(&mut comm, &mut v);
                v
            });
            for (r, v) in out.into_iter().enumerate() {
                let expect: u64 = (1..=r as u64 + 1).sum();
                assert_eq!(v, vec![expect, r as u64 + 1], "n={n} rank={r}");
            }
        }
    }

    #[test]
    fn scan_with_noncommutative_safety() {
        // Scan only requires associativity; check with prefix max, where
        // order cannot matter but prefix coverage still checks.
        let out = cluster(5).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let world = Group::world(comm.size());
            let mut v = vec![comm.rank() as u64 + 1];
            world.scan(&mut comm, &mut v, u64::max);
            v[0]
        });
        for (r, v) in out.into_iter().enumerate() {
            assert_eq!(v, r as u64 + 1, "prefix max of 1..=r+1");
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for n in 1..=6u32 {
            for root in 0..n as usize {
                let out = cluster(n).run_spmd(move |mb| {
                    let mut comm = Comm::new(mb);
                    let world = Group::world(comm.size());
                    let data = if comm.rank() == root { vec![root as u8, 0xAB] } else { Vec::new() };
                    world.bcast(&mut comm, root, data)
                });
                for v in out {
                    assert_eq!(v, vec![root as u8, 0xAB], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn allgather_collects_everyone() {
        for n in 1..=6u32 {
            let out = cluster(n).run_spmd(|mb| {
                let mut comm = Comm::new(mb);
                let world = Group::world(comm.size());
                let mine = vec![comm.rank() as u8; comm.rank() + 1];
                world.allgather(&mut comm, mine)
            });
            for v in out {
                for (r, block) in v.iter().enumerate() {
                    assert_eq!(block, &vec![r as u8; r + 1], "n={n}");
                }
            }
        }
    }

    #[test]
    fn collectives_compose_in_sequence() {
        let out = cluster(4).run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let world = Group::world(comm.size());
            let mut v = vec![1u64];
            world.allreduce_sum_u64(&mut comm, &mut v);
            world.barrier(&mut comm);
            let b = world.bcast(&mut comm, 0, vec![v[0] as u8]);
            world.barrier_binary_exchange(&mut comm);
            b[0]
        });
        assert_eq!(out, vec![4, 4, 4, 4]);
    }
}
