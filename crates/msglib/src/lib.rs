#![warn(missing_docs)]
//! # armci-msglib — a small message-passing library (the paper's "MPI")
//!
//! ARMCI is designed to be *compatible with* a message-passing library and
//! borrows its process group and barrier from it: the paper's baseline
//! `GA_Sync()` is `ARMCI_AllFence()` + `MPI_Barrier()`, and the new
//! `ARMCI_Barrier()` reuses the binary-exchange communication pattern of
//! `MPI_Barrier()` (paper §3.1.2, Figure 2).
//!
//! This crate provides that substrate over `armci-transport`:
//!
//! * a [`P2p`] trait — ranked, tagged, source-matched point-to-point
//!   send/recv, the minimal surface MPI-style collectives need;
//! * [`Comm`], the canonical implementation over a transport [`Mailbox`](armci_transport::Mailbox)
//!   (`armci_core::Armci` implements `P2p` too, so the same collectives
//!   run inside the ARMCI runtime);
//! * [`Group`], the communicator handle: an ordered subset of world ranks
//!   owning group↔world rank translation, with the collectives as
//!   methods — dissemination and binary-exchange barriers, binomial
//!   broadcast, recursive-doubling allreduce (the exact Figure 2
//!   algorithm, generalized to non-powers of two), ring allgather —
//!   all scoped to the group's members. `Group::world(n)` is the
//!   classical world scope (the historical world-scoped free functions
//!   have been removed in its favour).
//!
//! All collectives cost `O(log N)` one-way latencies except allgather,
//! matching the structures the paper reasons with.

pub mod codec;
pub mod collectives;
pub mod comm;
pub mod group;
pub mod rooted;

pub use codec::{BufWriter, Reader, Writer};
pub use collectives::{allreduce_tag, barrier_bx_tag, hier_bx_tag, Elem};
pub use comm::{Comm, CommError, P2p};
pub use group::{Group, Scoped};
pub use rooted::{gather, reduce, reduce_sum_f64, reduce_sum_u64, scatter};
