//! The [`P2p`] trait and its canonical transport-backed implementation.

use std::time::Instant;

use armci_transport::{Endpoint, Mailbox, Msg, ProcId, Tag};

/// Why a deadline-aware point-to-point receive failed — the error surface
/// the fallible collectives ([`crate::collectives::try_barrier_binary_exchange`]
/// and friends) propagate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The deadline expired with no matching message and no evidence of a
    /// dead peer.
    Timeout,
    /// A peer node's connection is known dead (reset, truncation, or an
    /// early close); the expected message can never arrive.
    PeerLost(armci_transport::NodeId),
    /// The local transport is torn down (every channel disconnected).
    Disconnected,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout => write!(f, "receive deadline expired"),
            CommError::PeerLost(n) => write!(f, "peer {n} lost"),
            CommError::Disconnected => write!(f, "transport disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

/// Ranked, tagged point-to-point messaging — the minimal surface the
/// collectives in [`crate::collectives`] are written against.
///
/// Implemented by [`Comm`] (a bare mailbox) and by `armci_core::Armci`
/// (so collectives can run *inside* the ARMCI runtime, interleaved with
/// one-sided traffic, exactly as MPI calls interleave with ARMCI calls in
/// Global Arrays).
pub trait P2p {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of processes in the group.
    fn size(&self) -> usize;

    /// Send `body` to rank `dst` with collective tag `tag`.
    /// Non-blocking, reliable, FIFO per (source, destination) pair.
    fn send_to(&mut self, dst: usize, tag: u32, body: Vec<u8>);

    /// Block until a message with tag `tag` from rank `src` arrives;
    /// messages that do not match are deferred, not dropped.
    fn recv_from(&mut self, src: usize, tag: u32) -> Vec<u8>;

    /// As [`P2p::recv_from`], but give up at `deadline` (or as soon as the
    /// expected peer is known dead) instead of blocking forever — the
    /// receive primitive the `try_*` collectives are written against.
    ///
    /// The default implementation ignores the deadline and delegates to
    /// the blocking receive, so implementations without failure detection
    /// (or tests that never need it) keep working unchanged.
    fn recv_from_deadline(&mut self, src: usize, tag: u32, deadline: Instant) -> Result<Vec<u8>, CommError> {
        let _ = deadline;
        Ok(self.recv_from(src, tag))
    }

    /// A monotonically increasing counter, bumped once per collective
    /// call, mixed into tags so that back-to-back collectives on the same
    /// ranks cannot capture each other's messages.
    fn next_epoch(&mut self) -> u32;

    /// Combined send-then-receive with the same partner; the two transfers
    /// overlap (send is non-blocking), so an exchange phase costs one
    /// one-way latency — the property the paper's binary-exchange analysis
    /// relies on.
    fn exchange(&mut self, peer: usize, tag: u32, body: Vec<u8>) -> Vec<u8> {
        self.send_to(peer, tag, body);
        self.recv_from(peer, tag)
    }
}

/// A plain message-passing communicator over one transport [`Mailbox`].
pub struct Comm {
    mailbox: Mailbox,
    epoch: u32,
}

impl Comm {
    /// Wrap a process mailbox.
    ///
    /// # Panics
    /// Panics if the mailbox belongs to a server endpoint: collectives are
    /// defined over user processes only.
    pub fn new(mailbox: Mailbox) -> Self {
        assert!(!mailbox.me().is_server(), "Comm requires a process endpoint");
        Comm { mailbox, epoch: 0 }
    }

    /// Borrow the underlying mailbox.
    pub fn mailbox(&mut self) -> &mut Mailbox {
        &mut self.mailbox
    }

    /// Unwrap the mailbox.
    pub fn into_mailbox(self) -> Mailbox {
        self.mailbox
    }
}

impl P2p for Comm {
    fn rank(&self) -> usize {
        self.mailbox.me().proc().unwrap().idx()
    }

    fn size(&self) -> usize {
        self.mailbox.topology().nprocs()
    }

    fn send_to(&mut self, dst: usize, tag: u32, body: Vec<u8>) {
        self.mailbox.send(Endpoint::Proc(ProcId(dst as u32)), Tag(Tag::MSGLIB_BASE + tag), body);
    }

    fn recv_from(&mut self, src: usize, tag: u32) -> Vec<u8> {
        let want_src = Endpoint::Proc(ProcId(src as u32));
        let want_tag = Tag(Tag::MSGLIB_BASE + tag);
        let Msg { body, .. } = self
            .mailbox
            .recv_match(|m| m.src == want_src && m.tag == want_tag)
            .expect("transport disconnected during collective");
        body.into_vec()
    }

    fn recv_from_deadline(&mut self, src: usize, tag: u32, deadline: Instant) -> Result<Vec<u8>, CommError> {
        let want_src = Endpoint::Proc(ProcId(src as u32));
        let want_tag = Tag(Tag::MSGLIB_BASE + tag);
        // Wait in short slices so a peer death surfaces promptly even
        // under a generous deadline.
        let slice = std::time::Duration::from_millis(25);
        loop {
            let until = deadline.min(Instant::now() + slice);
            match self.mailbox.recv_match_deadline(|m| m.src == want_src && m.tag == want_tag, until) {
                Ok(Some(m)) => return Ok(m.body.into_vec()),
                Ok(None) => {
                    let peer = self.mailbox.topology().node_of(ProcId(src as u32));
                    if self.mailbox.peer_is_lost(peer) {
                        return Err(CommError::PeerLost(peer));
                    }
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout);
                    }
                }
                Err(_) => return Err(CommError::Disconnected),
            }
        }
    }

    fn next_epoch(&mut self) -> u32 {
        let e = self.epoch;
        self.epoch = self.epoch.wrapping_add(1);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci_transport::{Cluster, LatencyModel};

    #[test]
    fn rank_and_size() {
        let c = Cluster::builder().nodes(3).procs_per_node(2).latency(LatencyModel::zero()).build();
        let out = c.run_spmd(|mb| {
            let comm = Comm::new(mb);
            (comm.rank(), comm.size())
        });
        for (r, (rank, size)) in out.into_iter().enumerate() {
            assert_eq!(rank, r);
            assert_eq!(size, 6);
        }
    }

    #[test]
    fn exchange_swaps_payloads() {
        let c = Cluster::builder().nodes(2).procs_per_node(1).latency(LatencyModel::zero()).build();
        let out = c.run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            let me = comm.rank();
            let peer = 1 - me;
            comm.exchange(peer, 9, vec![me as u8])
        });
        assert_eq!(out, vec![vec![1], vec![0]]);
    }

    #[test]
    fn epochs_increment() {
        let c = Cluster::builder().nodes(1).procs_per_node(1).latency(LatencyModel::zero()).build();
        let out = c.run_spmd(|mb| {
            let mut comm = Comm::new(mb);
            (comm.next_epoch(), comm.next_epoch(), comm.next_epoch())
        });
        assert_eq!(out[0], (0, 1, 2));
    }
}
