//! Property-based tests: every collective against a straightforward
//! sequential reference, over random process counts, roots, vector sizes
//! and contents.

use armci_msglib::rooted::{gather, reduce_sum_u64, scatter};
use armci_msglib::{Comm, Group, P2p};
use armci_transport::{Cluster, LatencyModel};
use proptest::prelude::*;

fn cluster(n: usize) -> Cluster {
    Cluster::builder().nodes(n as u32).procs_per_node(1).latency(LatencyModel::zero()).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_matches_reference(n in 1usize..10, veclen in 1usize..9, seed in any::<u64>()) {
        // Deterministic pseudo-random inputs per rank derived from seed.
        let inputs: Vec<Vec<u64>> = (0..n)
            .map(|r| (0..veclen).map(|i| seed.wrapping_mul(r as u64 + 1).wrapping_add(i as u64 * 77)).collect())
            .collect();
        let expect: Vec<u64> = (0..veclen)
            .map(|i| inputs.iter().map(|v| v[i]).fold(0u64, u64::wrapping_add))
            .collect();
        let inputs2 = inputs.clone();
        let out = cluster(n).run_spmd(move |mb| {
            let mut c = Comm::new(mb);
            let mut v = inputs2[c.rank()].clone();
            Group::world(n).allreduce_sum_u64(&mut c, &mut v);
            v
        });
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    #[test]
    fn scan_matches_reference(n in 1usize..10, seed in any::<u64>()) {
        let inputs: Vec<u64> = (0..n).map(|r| seed.wrapping_add(r as u64 * 31)).collect();
        let inputs2 = inputs.clone();
        let out = cluster(n).run_spmd(move |mb| {
            let mut c = Comm::new(mb);
            let mut v = vec![inputs2[c.rank()]];
            Group::world(n).scan_sum_u64(&mut c, &mut v);
            v[0]
        });
        let mut acc = 0u64;
        for (r, got) in out.into_iter().enumerate() {
            acc = acc.wrapping_add(inputs[r]);
            prop_assert_eq!(got, acc, "rank {}", r);
        }
    }

    #[test]
    fn reduce_gather_scatter_roundtrip(n in 1usize..9, root in 0usize..9, seed in any::<u64>()) {
        let root = root % n;
        let out = cluster(n).run_spmd(move |mb| {
            let mut c = Comm::new(mb);
            let me = c.rank() as u64;
            // reduce: sum of (me+seed)
            let mine = [me.wrapping_add(seed)];
            let red = reduce_sum_u64(&mut c, root, &mine);
            // gather rank-stamped blocks, then scatter them back rotated.
            let my_block = vec![c.rank() as u8; 3];
            let g = gather(&mut c, root, my_block);
            let size = c.size();
            let blocks = g.map(|mut blocks| {
                blocks.rotate_left(1 % size.max(1));
                blocks
            });
            let got = scatter(&mut c, root, blocks);
            (red, got)
        });
        let total: u64 = (0..n as u64).map(|m| m.wrapping_add(seed)).fold(0, u64::wrapping_add);
        for (r, (red, got)) in out.into_iter().enumerate() {
            if r == root {
                prop_assert_eq!(red, Some(vec![total]));
            } else {
                prop_assert_eq!(red, None);
            }
            // After rotation, rank r receives rank (r+1) % n's block.
            prop_assert_eq!(got, vec![((r + 1) % n) as u8; 3]);
        }
    }

    #[test]
    fn bcast_and_allgather_random_payloads(n in 1usize..9, root in 0usize..9, len in 0usize..40, seed in any::<u64>()) {
        let root = root % n;
        let payload: Vec<u8> = (0..len).map(|i| (seed as usize).wrapping_add(i * 13) as u8).collect();
        let payload2 = payload.clone();
        let out = cluster(n).run_spmd(move |mb| {
            let mut c = Comm::new(mb);
            let data = if c.rank() == root { payload2.clone() } else { Vec::new() };
            let b = Group::world(n).bcast(&mut c, root, data);
            let mine = vec![c.rank() as u8];
            let all = Group::world(n).allgather(&mut c, mine);
            Group::world(n).barrier_binary_exchange(&mut c);
            (b, all)
        });
        for (b, all) in out {
            prop_assert_eq!(&b, &payload);
            for (r, block) in all.iter().enumerate() {
                prop_assert_eq!(block, &vec![r as u8]);
            }
        }
    }
}
