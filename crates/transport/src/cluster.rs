//! Cluster construction: wiring mailboxes, the memory registry and the
//! topology together, and a convenience SPMD runner.

use std::sync::Arc;

use crate::fabric::{endpoint_index, FabricInner, Mailbox};
use crate::ids::{NodeId, ProcId, Topology};
use crate::latency::LatencyModel;
use crate::memory::MemoryRegistry;
use crate::message::Endpoint;

/// Builder for a [`Cluster`].
///
/// ```
/// use armci_transport::{Cluster, LatencyModel};
/// let cluster = Cluster::builder()
///     .nodes(4)
///     .procs_per_node(2)
///     .latency(LatencyModel::zero())
///     .build();
/// assert_eq!(cluster.topology().nprocs(), 8);
/// ```
pub struct ClusterBuilder {
    nodes: u32,
    procs_per_node: u32,
    latency: LatencyModel,
    seed: u64,
    trace: bool,
}

impl ClusterBuilder {
    /// Number of SMP nodes (default 1).
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n;
        self
    }

    /// User processes per node (default 1).
    pub fn procs_per_node(mut self, p: u32) -> Self {
        self.procs_per_node = p;
        self
    }

    /// Network latency model (default [`LatencyModel::myrinet_like`]).
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// Seed for the deterministic jitter streams (default 1).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Record every message send into a [`crate::trace::Trace`]
    /// retrievable via [`Cluster::trace`] (default off; tracing costs one
    /// mutexed push per send).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Wire up the cluster: one mailbox per process and per node server,
    /// plus a fresh memory registry.
    pub fn build(self) -> Cluster {
        let topology = Topology::new(self.nodes, self.procs_per_node);
        let n_endpoints = topology.nprocs() + 2 * topology.nnodes();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_endpoints).map(|_| crossbeam_channel::unbounded()).unzip();
        let trace = self.trace.then(|| Arc::new(crate::trace::Trace::new(n_endpoints)));
        let inner = Arc::new(FabricInner {
            topology: topology.clone(),
            latency: self.latency,
            txs,
            seed: self.seed,
            trace: trace.clone(),
        });
        let mut rxs: Vec<Option<_>> = rxs.into_iter().map(Some).collect();

        let proc_mailboxes = topology
            .all_procs()
            .map(|p| {
                let ep = Endpoint::Proc(p);
                let rx = rxs[endpoint_index(&topology, ep)].take().unwrap();
                Some(Mailbox::new(ep, inner.clone(), rx))
            })
            .collect();
        let server_mailboxes = topology
            .all_nodes()
            .map(|n| {
                let ep = Endpoint::Server(n);
                let rx = rxs[endpoint_index(&topology, ep)].take().unwrap();
                Some(Mailbox::new(ep, inner.clone(), rx))
            })
            .collect();
        let nic_mailboxes = topology
            .all_nodes()
            .map(|n| {
                let ep = Endpoint::Nic(n);
                let rx = rxs[endpoint_index(&topology, ep)].take().unwrap();
                Some(Mailbox::new(ep, inner.clone(), rx))
            })
            .collect();

        let registry = Arc::new(MemoryRegistry::new(topology.nprocs()));
        Cluster { topology, registry, proc_mailboxes, server_mailboxes, nic_mailboxes, trace }
    }
}

/// A fully wired emulated cluster. Hand out each endpoint's [`Mailbox`]
/// exactly once (they are single-owner, like a NIC port), share the
/// [`MemoryRegistry`] freely.
pub struct Cluster {
    topology: Topology,
    registry: Arc<MemoryRegistry>,
    proc_mailboxes: Vec<Option<Mailbox>>,
    server_mailboxes: Vec<Option<Mailbox>>,
    nic_mailboxes: Vec<Option<Mailbox>>,
    trace: Option<Arc<crate::trace::Trace>>,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder { nodes: 1, procs_per_node: 1, latency: LatencyModel::myrinet_like(), seed: 1, trace: false }
    }

    /// The message trace, if tracing was enabled at build time.
    pub fn trace(&self) -> Option<Arc<crate::trace::Trace>> {
        self.trace.clone()
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared memory registry.
    pub fn registry(&self) -> Arc<MemoryRegistry> {
        self.registry.clone()
    }

    /// Take ownership of process `p`'s mailbox.
    ///
    /// # Panics
    /// Panics if taken twice.
    pub fn take_proc(&mut self, p: ProcId) -> Mailbox {
        self.proc_mailboxes[p.idx()].take().unwrap_or_else(|| panic!("mailbox of {p} already taken"))
    }

    /// Take ownership of node `n`'s server mailbox.
    ///
    /// # Panics
    /// Panics if taken twice.
    pub fn take_server(&mut self, n: NodeId) -> Mailbox {
        self.server_mailboxes[n.idx()].take().unwrap_or_else(|| panic!("server mailbox of {n} already taken"))
    }

    /// Take ownership of node `n`'s NIC mailbox (only needed by layers
    /// implementing NIC-assisted operations).
    ///
    /// # Panics
    /// Panics if taken twice.
    pub fn take_nic(&mut self, n: NodeId) -> Mailbox {
        self.nic_mailboxes[n.idx()].take().unwrap_or_else(|| panic!("NIC mailbox of {n} already taken"))
    }

    /// Run an SPMD function on every *process* endpoint (no servers), each
    /// on its own thread, and collect the return values by rank.
    ///
    /// This is the entry point for layers that only need message passing
    /// (e.g. the msglib collectives and their tests); `armci-core`
    /// provides a richer runner that also spawns server threads.
    pub fn run_spmd<T, F>(mut self, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Mailbox) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let handles: Vec<_> = self
            .topology
            .all_procs()
            .map(|p| {
                let mb = self.take_proc(p);
                let f = f.clone();
                std::thread::Builder::new()
                    .name(format!("proc-{}", p.0))
                    .spawn(move || f(mb))
                    .expect("spawn process thread")
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("process thread panicked")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;

    #[test]
    fn builder_wires_all_endpoints() {
        let mut c = Cluster::builder().nodes(2).procs_per_node(2).latency(LatencyModel::zero()).build();
        for p in c.topology().all_procs().collect::<Vec<_>>() {
            let _ = c.take_proc(p);
        }
        for n in c.topology().all_nodes().collect::<Vec<_>>() {
            let _ = c.take_server(n);
        }
    }

    #[test]
    #[should_panic]
    fn double_take_panics() {
        let mut c = Cluster::builder().build();
        let _ = c.take_proc(ProcId(0));
        let _ = c.take_proc(ProcId(0));
    }

    #[test]
    fn spmd_ring_pass() {
        // Each proc sends its rank to the next and returns what it got.
        let c = Cluster::builder().nodes(4).procs_per_node(1).latency(LatencyModel::zero()).build();
        let results = c.run_spmd(|mut mb| {
            let me = mb.me().proc().unwrap();
            let n = mb.topology().nprocs() as u32;
            let next = ProcId((me.0 + 1) % n);
            mb.send(Endpoint::Proc(next), Tag(Tag::INTERNAL_BASE), vec![me.0 as u8]);
            let m = mb.recv().unwrap();
            m.body[0]
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn proc_to_server_messaging() {
        let mut c = Cluster::builder().nodes(2).procs_per_node(1).latency(LatencyModel::zero()).build();
        let mut p0 = c.take_proc(ProcId(0));
        let mut s1 = c.take_server(NodeId(1));
        let server = std::thread::spawn(move || {
            let m = s1.recv().unwrap();
            let src = m.src;
            s1.send(src, Tag(Tag::INTERNAL_BASE + 1), vec![m.body[0] + 1]);
        });
        p0.send(Endpoint::Server(NodeId(1)), Tag(Tag::INTERNAL_BASE), vec![41]);
        let reply = p0.recv().unwrap();
        assert_eq!(reply.body, vec![42]);
        assert_eq!(reply.src, Endpoint::Server(NodeId(1)));
        server.join().unwrap();
    }

    #[test]
    fn registry_shared_across_cluster() {
        let c = Cluster::builder().nodes(1).procs_per_node(2).build();
        let r1 = c.registry();
        let r2 = c.registry();
        let (id, seg) = r1.register(ProcId(0), 64);
        seg.write_u64(0, 7);
        assert_eq!(r2.lookup(ProcId(0), id).read_u64(0), 7);
    }
}
