//! Network latency model for the emulated cluster.
//!
//! The paper's evaluation platform was a Myrinet-2000 network driven by GM,
//! whose short-message one-way latency was on the order of 10 µs. All of
//! the paper's analysis is in units of *one-way message latencies*, so the
//! single number that matters for reproducing the result shapes is the
//! inter-node one-way latency; a per-byte term models bandwidth for larger
//! transfers and an intra-node term models shared-memory message passing
//! (essentially free next to the network).

use std::time::Duration;

/// Cost model mapping a message (source node, destination node, size) to a
/// one-way delivery latency.
///
/// The model is `L = base + size * per_byte` for inter-node messages and
/// `L = intra_node` for messages that stay on one node. An optional
/// bounded uniform jitter can be added to inter-node messages to emulate
/// scheduling noise on a real cluster (useful for shaking out protocol
/// bugs that only show under reordering across *different* channels; order
/// within one channel is always preserved, as GM guarantees).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Base one-way latency for an inter-node message.
    pub inter_node: Duration,
    /// Additional latency per payload byte (inverse bandwidth).
    pub per_byte: Duration,
    /// One-way latency for an intra-node (shared-memory) message.
    pub intra_node: Duration,
    /// Maximum extra uniform jitter added to inter-node messages.
    pub jitter: Duration,
}

impl LatencyModel {
    /// Myrinet-2000/GM-like defaults, scaled up so that the emulation is
    /// robust to OS timer granularity on small machines: 50 µs one-way,
    /// ~250 MB/s, 1 µs intra-node, no jitter.
    ///
    /// Absolute numbers are not meant to match the 2003 testbed — only the
    /// *ratios* between algorithms matter, and those are governed by
    /// message counts, which the model preserves.
    pub fn myrinet_like() -> Self {
        LatencyModel {
            inter_node: Duration::from_micros(50),
            per_byte: Duration::from_nanos(4),
            intra_node: Duration::from_micros(1),
            jitter: Duration::ZERO,
        }
    }

    /// Zero-latency model: messages are delivered as fast as channels can
    /// carry them. Useful for functional tests where wall-clock time is
    /// irrelevant.
    pub fn zero() -> Self {
        LatencyModel {
            inter_node: Duration::ZERO,
            per_byte: Duration::ZERO,
            intra_node: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// Set the base inter-node latency.
    pub fn with_inter_node(mut self, d: Duration) -> Self {
        self.inter_node = d;
        self
    }

    /// Set the per-byte (inverse bandwidth) term.
    pub fn with_per_byte(mut self, d: Duration) -> Self {
        self.per_byte = d;
        self
    }

    /// Set the intra-node latency.
    pub fn with_intra_node(mut self, d: Duration) -> Self {
        self.intra_node = d;
        self
    }

    /// Set the maximum uniform jitter added to inter-node messages.
    pub fn with_jitter(mut self, d: Duration) -> Self {
        self.jitter = d;
        self
    }

    /// One-way latency for a message of `size` bytes, excluding jitter.
    ///
    /// `same_node` selects the intra-node constant; the per-byte term only
    /// applies across the network (intra-node transfers are memcpys whose
    /// cost the host machine already pays for real).
    #[inline]
    pub fn one_way(&self, same_node: bool, size: usize) -> Duration {
        if same_node {
            self.intra_node
        } else {
            self.inter_node + self.per_byte.saturating_mul(size as u32)
        }
    }

    /// Jitter to add for a draw `u` uniform in `[0, 1)`.
    #[inline]
    pub fn jitter_for(&self, u: f64) -> Duration {
        debug_assert!((0.0..1.0).contains(&u));
        self.jitter.mul_f64(u)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::myrinet_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_node_includes_size_term() {
        let m = LatencyModel::zero().with_inter_node(Duration::from_micros(10)).with_per_byte(Duration::from_nanos(2));
        assert_eq!(m.one_way(false, 0), Duration::from_micros(10));
        assert_eq!(m.one_way(false, 1000), Duration::from_micros(12));
    }

    #[test]
    fn intra_node_ignores_size() {
        let m = LatencyModel::myrinet_like();
        assert_eq!(m.one_way(true, 0), m.one_way(true, 1 << 20));
    }

    #[test]
    fn zero_model_is_zero() {
        let m = LatencyModel::zero();
        assert_eq!(m.one_way(false, 4096), Duration::ZERO);
        assert_eq!(m.one_way(true, 4096), Duration::ZERO);
    }

    #[test]
    fn jitter_scales_with_draw() {
        let m = LatencyModel::zero().with_jitter(Duration::from_micros(100));
        assert_eq!(m.jitter_for(0.0), Duration::ZERO);
        assert_eq!(m.jitter_for(0.5), Duration::from_micros(50));
    }

    #[test]
    fn builder_chain_overrides() {
        let m = LatencyModel::myrinet_like().with_inter_node(Duration::from_millis(1)).with_intra_node(Duration::ZERO);
        assert_eq!(m.one_way(false, 0), Duration::from_millis(1));
        assert_eq!(m.one_way(true, 0), Duration::ZERO);
    }
}
