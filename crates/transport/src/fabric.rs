//! The message fabric: the mailbox abstraction endpoints receive from,
//! the backend contract transports implement, and the built-in emulator
//! backend (latency-stamped channels).
//!
//! Design notes:
//!
//! * **Sends are one-sided and non-blocking**, like GM sends: the sender
//!   stamps the envelope with its delivery time and returns immediately.
//!   All waiting happens on the receive side, so concurrently in-flight
//!   messages overlap and a k-message exchange phase costs ~1 latency.
//! * **Per-pair FIFO order is preserved** (one crossbeam channel per
//!   destination endpoint, constant latency per pair ⇒ monotone stamps),
//!   matching GM's ordered delivery guarantee. Order *across* senders is
//!   whatever the scheduler produces, as on a real network.
//! * **Tag matching**: a [`Mailbox`] supports `recv_match`, deferring
//!   non-matching messages to an internal queue, so several protocol
//!   layers (msglib collectives, ARMCI replies) can share one inbox the
//!   way MPI tags share one rank.
//! * **Backends**: the tag-matching layer is transport-agnostic. The raw
//!   move-bytes-between-endpoints contract is [`MailboxBackend`]; the
//!   in-process emulator ([`EmuMailbox`], built by [`crate::Cluster`]) is
//!   the default, and real-network transports (e.g. the TCP backend in
//!   `armci-netfab`) plug in via [`Mailbox::from_backend`]. The emulator
//!   stays enum-dispatched (not boxed) so its hot path is unchanged.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Sender};

use crate::ids::Topology;
use crate::latency::LatencyModel;
use crate::message::{Endpoint, Msg, Tag};
use crate::wait::wait_until;

/// A message in flight: payload plus the time before which the receiver
/// must not observe it.
pub(crate) struct Envelope {
    pub msg: Msg,
    pub deliver_at: Instant,
}

/// Error returned by receive operations when every sender handle to this
/// mailbox has been dropped (cluster teardown), or — on a network
/// backend — when every peer connection has been torn down.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mailbox disconnected: all senders dropped")
    }
}

impl std::error::Error for RecvError {}

/// Wire-level traffic counters for one endpoint: messages and payload
/// bytes that actually crossed the inter-node network (intra-node sends
/// are not wire traffic on either backend).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct WireCounters {
    /// Inter-node messages sent by this endpoint.
    pub msgs: u64,
    /// Payload bytes of those messages (headers excluded, so the number
    /// is comparable across backends with different framing).
    pub bytes: u64,
}

/// The raw transport contract a [`Mailbox`] drives.
///
/// A backend moves `(src, tag, body)` triples between endpoints; the
/// mailbox layers MPI-style tag matching (`recv_match`, the deferred
/// queue) on top, so backends never see protocol concerns. Contract:
///
/// * sends are non-blocking and fire-and-forget; sending to a torn-down
///   endpoint is silently dropped (only happens during teardown);
/// * receives deliver in per-(src → dst) FIFO order;
/// * once teardown is complete (no sender can ever reach this endpoint
///   again) receives return [`RecvError`], *after* draining anything
///   already in flight.
pub trait MailboxBackend: Send {
    /// This endpoint's identity.
    fn me(&self) -> Endpoint;

    /// The cluster topology (shared by all endpoints).
    fn topology(&self) -> &Topology;

    /// The latency model messages are stamped with ([`LatencyModel::zero`]
    /// for real-network backends: the wire charges its own latency).
    fn latency_model(&self) -> &LatencyModel;

    /// Send `body` to `dst` with protocol tag `tag`.
    fn send(&mut self, dst: Endpoint, tag: Tag, body: crate::Body);

    /// Receive the next deliverable message in arrival order, blocking.
    fn recv_raw(&mut self) -> Result<Msg, RecvError>;

    /// Non-blocking receive. `Ok(None)` if nothing is deliverable now.
    fn try_recv_raw(&mut self) -> Result<Option<Msg>, RecvError>;

    /// Blocking receive with a deadline. `Ok(None)` once it is known that
    /// nothing will become deliverable before `deadline`.
    fn recv_deadline_raw(&mut self, deadline: Instant) -> Result<Option<Msg>, RecvError>;

    /// Wire traffic sent by this endpoint so far.
    fn wire_counters(&self) -> WireCounters;

    /// Nodes whose connection to this endpoint's node is no longer usable
    /// (peer closed its stream, reset it, or died). The emulator's
    /// channels cannot lose a peer, so the default is "nobody".
    fn lost_peers(&self) -> Vec<crate::ids::NodeId> {
        Vec::new()
    }

    /// Whether the connection to `node` is no longer usable.
    fn peer_is_lost(&self, node: crate::ids::NodeId) -> bool {
        let _ = node;
        false
    }

    /// Nodes whose connection is currently *suspect*: lost but still
    /// under active recovery (reconnect + replay), not yet declared dead.
    /// Backends without a recovery layer never suspect anyone.
    fn suspect_peers(&self) -> Vec<crate::ids::NodeId> {
        Vec::new()
    }
}

/// Shared, cheaply-clonable sending side of the emulator fabric: one
/// sender per endpoint, plus the latency model used to stamp envelopes.
pub(crate) struct FabricInner {
    pub topology: Topology,
    pub latency: LatencyModel,
    /// Senders indexed by [`endpoint_index`].
    pub txs: Vec<Sender<Envelope>>,
    pub seed: u64,
    /// Optional message trace (see [`crate::trace`]).
    pub trace: Option<std::sync::Arc<crate::trace::Trace>>,
}

/// Dense index of an endpoint in fabric tables: processes first, then
/// node servers, then node NICs. This is also the trace-shard index and
/// the endpoint numbering used by network backends' address tables.
pub fn endpoint_index(topo: &Topology, ep: Endpoint) -> usize {
    match ep {
        Endpoint::Proc(p) => {
            debug_assert!(p.idx() < topo.nprocs());
            p.idx()
        }
        Endpoint::Server(n) => {
            debug_assert!(n.idx() < topo.nnodes());
            topo.nprocs() + n.idx()
        }
        Endpoint::Nic(n) => {
            debug_assert!(n.idx() < topo.nnodes());
            topo.nprocs() + topo.nnodes() + n.idx()
        }
    }
}

/// Total number of endpoints (the [`endpoint_index`] domain size):
/// every process, plus one server and one NIC per node.
pub fn endpoint_count(topo: &Topology) -> usize {
    topo.nprocs() + 2 * topo.nnodes()
}

/// The node an endpoint lives on.
pub fn node_of_endpoint(topo: &Topology, ep: Endpoint) -> crate::ids::NodeId {
    match ep {
        Endpoint::Proc(p) => topo.node_of(p),
        Endpoint::Server(n) | Endpoint::Nic(n) => n,
    }
}

/// xorshift64* — a tiny deterministic PRNG for jitter draws, so the
/// transport does not need a `rand` dependency on its hot path.
#[derive(Clone, Debug)]
pub(crate) struct XorShift64(u64);

impl XorShift64 {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        XorShift64(seed | 1)
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The emulator backend: latency-stamped in-process channels.
pub(crate) struct EmuMailbox {
    me: Endpoint,
    /// `me`'s dense endpoint index — the trace shard this mailbox's sends
    /// are recorded into.
    my_index: usize,
    inner: Arc<FabricInner>,
    rx: Receiver<Envelope>,
    /// An envelope popped from `rx` whose delivery time has not arrived
    /// (used by the non-blocking and deadline receives).
    pending: Option<Envelope>,
    rng: XorShift64,
    wire: WireCounters,
}

impl EmuMailbox {
    pub(crate) fn new(me: Endpoint, inner: Arc<FabricInner>, rx: Receiver<Envelope>) -> Self {
        let my_index = endpoint_index(&inner.topology, me);
        let seed = inner.seed ^ ((my_index as u64 + 1) << 32);
        EmuMailbox { me, my_index, inner, rx, pending: None, rng: XorShift64::new(seed), wire: WireCounters::default() }
    }

    fn send(&mut self, dst: Endpoint, tag: Tag, body: crate::Body) {
        let topo = &self.inner.topology;
        if let Some(trace) = &self.inner.trace {
            trace.record(self.my_index, self.me, dst, tag, body.len());
        }
        let same_node = node_of_endpoint(topo, self.me) == node_of_endpoint(topo, dst);
        if !same_node {
            self.wire.msgs += 1;
            self.wire.bytes += body.len() as u64;
        }
        let mut lat = self.inner.latency.one_way(same_node, body.len());
        if !same_node && !self.inner.latency.jitter.is_zero() {
            lat += self.inner.latency.jitter_for(self.rng.next_f64());
        }
        let env = Envelope { msg: Msg { src: self.me, tag, body }, deliver_at: Instant::now() + lat };
        let _ = self.inner.txs[endpoint_index(topo, dst)].send(env);
    }

    fn recv_raw(&mut self) -> Result<Msg, RecvError> {
        let env = match self.pending.take() {
            Some(e) => e,
            None => self.rx.recv().map_err(|_| RecvError)?,
        };
        wait_until(env.deliver_at);
        Ok(env.msg)
    }

    fn try_recv_raw(&mut self) -> Result<Option<Msg>, RecvError> {
        if let Some(env) = self.pending.take() {
            if Instant::now() >= env.deliver_at {
                return Ok(Some(env.msg));
            }
            self.pending = Some(env);
            return Ok(None);
        }
        match self.rx.try_recv() {
            Ok(env) => {
                if Instant::now() >= env.deliver_at {
                    Ok(Some(env.msg))
                } else {
                    self.pending = Some(env);
                    Ok(None)
                }
            }
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(RecvError),
        }
    }

    fn recv_deadline_raw(&mut self, deadline: Instant) -> Result<Option<Msg>, RecvError> {
        let env = match self.pending.take() {
            Some(e) => e,
            None => match self.rx.recv_deadline(deadline) {
                Ok(e) => e,
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => return Ok(None),
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return Err(RecvError),
            },
        };
        // Delivery is in arrival order; if the head of the inbox is not
        // deliverable by the deadline, nothing behind it may overtake.
        if env.deliver_at > deadline {
            wait_until(deadline);
            self.pending = Some(env);
            return Ok(None);
        }
        wait_until(env.deliver_at);
        Ok(Some(env.msg))
    }
}

/// Enum dispatch over the built-in emulator (kept inline so its hot send
/// path costs exactly what it did before backends existed) and boxed
/// extension backends.
enum BackendImpl {
    Emu(EmuMailbox),
    Ext(Box<dyn MailboxBackend>),
}

/// One endpoint's connection to the fabric: its inbox plus the ability to
/// send to any other endpoint.
///
/// Owned exclusively by the thread driving that endpoint (a user process
/// or a server thread); not `Clone`.
pub struct Mailbox {
    backend: BackendImpl,
    /// Messages received but not matched by a `recv_match` predicate yet,
    /// in arrival order.
    deferred: VecDeque<Msg>,
}

impl Mailbox {
    pub(crate) fn new(me: Endpoint, inner: Arc<FabricInner>, rx: Receiver<Envelope>) -> Self {
        Mailbox { backend: BackendImpl::Emu(EmuMailbox::new(me, inner, rx)), deferred: VecDeque::new() }
    }

    /// Wrap a custom transport backend (e.g. `armci-netfab`'s TCP
    /// backend) in the full tag-matching mailbox.
    pub fn from_backend(backend: Box<dyn MailboxBackend>) -> Self {
        Mailbox { backend: BackendImpl::Ext(backend), deferred: VecDeque::new() }
    }

    /// This mailbox's endpoint identity.
    #[inline]
    pub fn me(&self) -> Endpoint {
        match &self.backend {
            BackendImpl::Emu(b) => b.me,
            BackendImpl::Ext(b) => b.me(),
        }
    }

    /// The cluster topology (shared by all endpoints).
    #[inline]
    pub fn topology(&self) -> &Topology {
        match &self.backend {
            BackendImpl::Emu(b) => &b.inner.topology,
            BackendImpl::Ext(b) => b.topology(),
        }
    }

    /// The latency model messages are stamped with (zero on real-network
    /// backends, where the wire itself charges latency).
    #[inline]
    pub fn latency_model(&self) -> &LatencyModel {
        match &self.backend {
            BackendImpl::Emu(b) => &b.inner.latency,
            BackendImpl::Ext(b) => b.latency_model(),
        }
    }

    /// Wire-level traffic (inter-node messages and payload bytes) sent by
    /// this endpoint so far. Intra-node sends are free on both backends
    /// and are not counted.
    #[inline]
    pub fn wire_counters(&self) -> WireCounters {
        match &self.backend {
            BackendImpl::Emu(b) => b.wire,
            BackendImpl::Ext(b) => b.wire_counters(),
        }
    }

    /// Send `body` to `dst` with protocol tag `tag`.
    ///
    /// Non-blocking (fire-and-forget): the cost of the message is charged
    /// entirely on the receive side via the delivery stamp. Sending to a
    /// torn-down endpoint is silently dropped, which only happens during
    /// cluster teardown.
    ///
    /// `body` is anything convertible to [`crate::Body`]: a `Vec<u8>`
    /// (moved, no copy), a pooled shared buffer, or a small slice
    /// (stored inline, no allocation).
    pub fn send(&mut self, dst: Endpoint, tag: Tag, body: impl Into<crate::Body>) {
        let body = body.into();
        match &mut self.backend {
            BackendImpl::Emu(b) => b.send(dst, tag, body),
            BackendImpl::Ext(b) => b.send(dst, tag, body),
        }
    }

    fn recv_from_wire(&mut self) -> Result<Msg, RecvError> {
        match &mut self.backend {
            BackendImpl::Emu(b) => b.recv_raw(),
            BackendImpl::Ext(b) => b.recv_raw(),
        }
    }

    /// Receive the next message in arrival order, blocking until one is
    /// available *and* its delivery time has passed.
    pub fn recv(&mut self) -> Result<Msg, RecvError> {
        if let Some(m) = self.deferred.pop_front() {
            return Ok(m);
        }
        self.recv_from_wire()
    }

    /// Receive the next message whose `(src, tag)` satisfies `pred`,
    /// deferring (not dropping) everything else.
    ///
    /// Deferred messages are replayed, still in arrival order, by later
    /// `recv`/`recv_match` calls — MPI-style tag matching.
    pub fn recv_match(&mut self, mut pred: impl FnMut(&Msg) -> bool) -> Result<Msg, RecvError> {
        if let Some(pos) = self.deferred.iter().position(&mut pred) {
            return Ok(self.deferred.remove(pos).unwrap());
        }
        loop {
            let m = self.recv_from_wire()?;
            if pred(&m) {
                return Ok(m);
            }
            self.deferred.push_back(m);
        }
    }

    /// Receive the next message carrying `tag` (any source).
    pub fn recv_tag(&mut self, tag: Tag) -> Result<Msg, RecvError> {
        self.recv_match(|m| m.tag == tag)
    }

    /// Receive the next message carrying `tag` from endpoint `src`.
    pub fn recv_tag_from(&mut self, src: Endpoint, tag: Tag) -> Result<Msg, RecvError> {
        self.recv_match(|m| m.tag == tag && m.src == src)
    }

    /// Non-blocking receive in arrival order. Returns `Ok(None)` if no
    /// message is currently deliverable (empty inbox, or the head of the
    /// inbox has a future delivery stamp).
    pub fn try_recv(&mut self) -> Result<Option<Msg>, RecvError> {
        if let Some(m) = self.deferred.pop_front() {
            return Ok(Some(m));
        }
        match &mut self.backend {
            BackendImpl::Emu(b) => b.try_recv_raw(),
            BackendImpl::Ext(b) => b.try_recv_raw(),
        }
    }

    /// Receive the next message in arrival order, waiting at most until
    /// `deadline`. Returns `Ok(None)` on timeout. Used by drain loops
    /// that must also notice shutdown (e.g. network reader teardown).
    pub fn recv_deadline(&mut self, deadline: Instant) -> Result<Option<Msg>, RecvError> {
        if let Some(m) = self.deferred.pop_front() {
            return Ok(Some(m));
        }
        match &mut self.backend {
            BackendImpl::Emu(b) => b.recv_deadline_raw(deadline),
            BackendImpl::Ext(b) => b.recv_deadline_raw(deadline),
        }
    }

    /// [`Mailbox::recv_deadline`] with a relative timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Msg>, RecvError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// [`Mailbox::recv_match`] with a deadline: receive the next message
    /// satisfying `pred`, deferring non-matching messages, but give up and
    /// return `Ok(None)` once nothing more can arrive before `deadline`.
    ///
    /// Deferred messages are checked first and returned immediately even
    /// if the deadline has already passed.
    pub fn recv_match_deadline(
        &mut self,
        mut pred: impl FnMut(&Msg) -> bool,
        deadline: Instant,
    ) -> Result<Option<Msg>, RecvError> {
        if let Some(pos) = self.deferred.iter().position(&mut pred) {
            return Ok(Some(self.deferred.remove(pos).unwrap()));
        }
        loop {
            let m = match &mut self.backend {
                BackendImpl::Emu(b) => b.recv_deadline_raw(deadline)?,
                BackendImpl::Ext(b) => b.recv_deadline_raw(deadline)?,
            };
            match m {
                Some(m) if pred(&m) => return Ok(Some(m)),
                Some(m) => self.deferred.push_back(m),
                None => return Ok(None),
            }
        }
    }

    /// Nodes whose connection to this endpoint's node is no longer usable
    /// (closed, reset, or the peer process died). Always empty on the
    /// emulator backend.
    pub fn lost_peers(&self) -> Vec<crate::ids::NodeId> {
        match &self.backend {
            BackendImpl::Emu(_) => Vec::new(),
            BackendImpl::Ext(b) => b.lost_peers(),
        }
    }

    /// Whether the connection to `node` is no longer usable.
    pub fn peer_is_lost(&self, node: crate::ids::NodeId) -> bool {
        match &self.backend {
            BackendImpl::Emu(_) => false,
            BackendImpl::Ext(b) => b.peer_is_lost(node),
        }
    }

    /// Nodes whose connection is suspect (under recovery, not yet dead).
    /// Always empty on the emulator backend.
    pub fn suspect_peers(&self) -> Vec<crate::ids::NodeId> {
        match &self.backend {
            BackendImpl::Emu(_) => Vec::new(),
            BackendImpl::Ext(b) => b.suspect_peers(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;
    use std::time::Duration;

    fn fabric_pair(latency: LatencyModel) -> (Mailbox, Mailbox) {
        // 2 nodes x 1 proc, no servers used in these tests.
        let topo = Topology::new(2, 1);
        let n = topo.nprocs() + topo.nnodes();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| crossbeam_channel::unbounded()).unzip();
        let inner = Arc::new(FabricInner { topology: topo, latency, txs, seed: 7, trace: None });
        let mut rxs = rxs.into_iter();
        let a = Mailbox::new(Endpoint::Proc(ProcId(0)), inner.clone(), rxs.next().unwrap());
        let b = Mailbox::new(Endpoint::Proc(ProcId(1)), inner, rxs.next().unwrap());
        (a, b)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (mut a, mut b) = fabric_pair(LatencyModel::zero());
        a.send(Endpoint::Proc(ProcId(1)), Tag(5), vec![1, 2, 3]);
        let m = b.recv().unwrap();
        assert_eq!(m.src, Endpoint::Proc(ProcId(0)));
        assert_eq!(m.tag, Tag(5));
        assert_eq!(m.body, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_order_per_pair() {
        let (mut a, mut b) = fabric_pair(LatencyModel::zero());
        for i in 0..10u8 {
            a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![i]);
        }
        for i in 0..10u8 {
            assert_eq!(b.recv().unwrap().body, vec![i]);
        }
    }

    #[test]
    fn latency_is_charged_on_receive() {
        let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(5));
        let (mut a, mut b) = fabric_pair(lat);
        let t0 = Instant::now();
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![]);
        assert!(t0.elapsed() < Duration::from_millis(4), "send must not block");
        b.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5), "recv must wait out the stamp");
    }

    #[test]
    fn in_flight_messages_overlap() {
        // Two messages sent back-to-back with 10ms latency arrive ~10ms
        // after the sends, not 20ms: latency overlaps.
        let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(10));
        let (mut a, mut b) = fabric_pair(lat);
        let t0 = Instant::now();
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![1]);
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![2]);
        b.recv().unwrap();
        b.recv().unwrap();
        let el = t0.elapsed();
        assert!(el >= Duration::from_millis(10));
        assert!(el < Duration::from_millis(18), "latencies must overlap, took {el:?}");
    }

    #[test]
    fn recv_match_defers_and_replays_in_order() {
        let (mut a, mut b) = fabric_pair(LatencyModel::zero());
        a.send(Endpoint::Proc(ProcId(1)), Tag(1), vec![1]);
        a.send(Endpoint::Proc(ProcId(1)), Tag(2), vec![2]);
        a.send(Endpoint::Proc(ProcId(1)), Tag(1), vec![3]);
        let m = b.recv_tag(Tag(2)).unwrap();
        assert_eq!(m.body, vec![2]);
        // The two deferred Tag(1) messages replay in arrival order.
        assert_eq!(b.recv().unwrap().body, vec![1]);
        assert_eq!(b.recv().unwrap().body, vec![3]);
    }

    #[test]
    fn try_recv_respects_delivery_stamp() {
        let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(20));
        let (mut a, mut b) = fabric_pair(lat);
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![]);
        // Give the channel time to carry it, but not the stamp.
        std::thread::sleep(Duration::from_millis(1));
        assert!(b.try_recv().unwrap().is_none(), "stamp not due yet");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn wire_counters_count_inter_node_only() {
        let topo = Topology::new(2, 2);
        let n = endpoint_count(&topo);
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| crossbeam_channel::unbounded()).unzip();
        let inner = Arc::new(FabricInner { topology: topo, latency: LatencyModel::zero(), txs, seed: 7, trace: None });
        let mut rxs = rxs.into_iter();
        let mut a = Mailbox::new(Endpoint::Proc(ProcId(0)), inner.clone(), rxs.next().unwrap());
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![1, 2, 3]); // same node: free
        assert_eq!(a.wire_counters(), WireCounters::default());
        a.send(Endpoint::Proc(ProcId(2)), Tag(0), vec![1, 2, 3, 4]); // crosses the wire
        a.send(Endpoint::Server(crate::ids::NodeId(1)), Tag(0), vec![5]);
        assert_eq!(a.wire_counters(), WireCounters { msgs: 2, bytes: 5 });
    }

    #[test]
    fn disconnect_reported() {
        // Build a mailbox whose every sender handle is dropped — the state
        // an endpoint observes at cluster teardown. In-flight messages
        // must still drain before the disconnect is reported.
        let topo = Topology::new(2, 1);
        let n = topo.nprocs() + topo.nnodes();
        let (txs, _rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| crossbeam_channel::unbounded()).unzip();
        let inner = Arc::new(FabricInner { topology: topo, latency: LatencyModel::zero(), txs, seed: 7, trace: None });
        let (tx, rx) = crossbeam_channel::unbounded::<Envelope>();
        let mut b = Mailbox::new(Endpoint::Proc(ProcId(1)), inner, rx);
        let sent = tx.send(Envelope {
            msg: Msg { src: Endpoint::Proc(ProcId(0)), tag: Tag(3), body: vec![9].into() },
            deliver_at: Instant::now(),
        });
        assert!(sent.is_ok());
        drop(tx);
        // The already-sent message drains first...
        assert_eq!(b.recv().unwrap().body, vec![9]);
        // ...then every receive flavour reports the torn-down fabric.
        assert!(matches!(b.recv(), Err(RecvError)));
        assert!(matches!(b.try_recv(), Err(RecvError)));
        assert!(matches!(b.recv_tag(Tag(3)), Err(RecvError)));
        assert!(matches!(b.recv_deadline(Instant::now()), Err(RecvError)));
    }

    #[test]
    fn recv_deadline_does_not_deliver_before_latency_stamp() {
        // A message stamped 30ms out must NOT be delivered by a 5ms
        // deadline receive — and must not be lost either: a later receive
        // with a generous deadline gets it, still honouring the stamp.
        let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(30));
        let (mut a, mut b) = fabric_pair(lat);
        let t0 = Instant::now();
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![7]);
        let early = b.recv_deadline(t0 + Duration::from_millis(5)).unwrap();
        assert!(early.is_none(), "stamp not due: deadline receive must expire empty");
        assert!(t0.elapsed() < Duration::from_millis(25), "expiry must not wait out the stamp");
        let m = b.recv_deadline(t0 + Duration::from_millis(500)).unwrap().expect("stamped message");
        assert_eq!(m.body, vec![7]);
        assert!(t0.elapsed() >= Duration::from_millis(30), "delivery honours the stamp");
    }

    #[test]
    fn recv_deadline_expiry_does_not_let_later_messages_overtake() {
        // Head-of-line message has a 40ms stamp; one behind it has the
        // same channel so its stamp is no earlier. After an expired
        // deadline receive re-pends the head, arrival order must hold.
        let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(40));
        let (mut a, mut b) = fabric_pair(lat);
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![1]);
        a.send(Endpoint::Proc(ProcId(1)), Tag(0), vec![2]);
        assert!(b.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        assert_eq!(b.recv().unwrap().body, vec![1], "expired deadline recv must not reorder");
        assert_eq!(b.recv().unwrap().body, vec![2]);
    }

    #[test]
    fn recv_match_deadline_prefers_deferred_even_past_deadline() {
        let (mut a, mut b) = fabric_pair(LatencyModel::zero());
        a.send(Endpoint::Proc(ProcId(1)), Tag(1), vec![1]);
        a.send(Endpoint::Proc(ProcId(1)), Tag(2), vec![2]);
        // Matching Tag(2) defers the Tag(1) message.
        assert_eq!(b.recv_tag(Tag(2)).unwrap().body, vec![2]);
        // An already-expired deadline still yields the deferred match.
        let m = b.recv_match_deadline(|m| m.tag == Tag(1), Instant::now()).unwrap();
        assert_eq!(m.expect("deferred message").body, vec![1]);
    }

    #[test]
    fn recv_match_deadline_times_out_and_keeps_nonmatching() {
        let (mut a, mut b) = fabric_pair(LatencyModel::zero());
        a.send(Endpoint::Proc(ProcId(1)), Tag(9), vec![9]);
        std::thread::sleep(Duration::from_millis(2));
        // No Tag(1) message exists: the call times out, deferring Tag(9).
        let none = b.recv_match_deadline(|m| m.tag == Tag(1), Instant::now() + Duration::from_millis(5)).unwrap();
        assert!(none.is_none());
        assert_eq!(b.recv().unwrap().body, vec![9], "non-matching message stays queued");
    }

    #[test]
    fn emulator_reports_no_lost_peers() {
        let (a, _b) = fabric_pair(LatencyModel::zero());
        assert!(a.lost_peers().is_empty());
        assert!(!a.peer_is_lost(crate::ids::NodeId(1)));
    }

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut r1 = XorShift64::new(42);
        let mut r2 = XorShift64::new(42);
        for _ in 0..100 {
            let (a, b) = (r1.next_f64(), r2.next_f64());
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
    }
}
