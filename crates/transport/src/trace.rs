//! Optional message tracing.
//!
//! When enabled on the [`crate::ClusterBuilder`], every send is recorded
//! with a timestamp, endpoints, tag and payload size. Traces let tests
//! and the reproduction harness verify the *structure* of an algorithm —
//! e.g. that a binary-exchange barrier really only talks to XOR partners,
//! or that `ARMCI_Barrier()` sends exactly `2·log2(N)` messages per
//! process — independently of timing.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::message::{Endpoint, Tag};

/// One recorded send.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Time of the send relative to trace creation.
    pub at: Duration,
    /// Sender.
    pub src: Endpoint,
    /// Destination.
    pub dst: Endpoint,
    /// Protocol tag.
    pub tag: Tag,
    /// Payload bytes.
    pub size: usize,
}

/// A shared, append-only trace of message sends.
///
/// Storage is sharded per sending endpoint: each sender appends to its own
/// buffer under an uncontended lock, so tracing never serializes the hot
/// send path across threads. Shards are merged (sorted by timestamp) on
/// every read-side query.
pub struct Trace {
    t0: Instant,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
}

impl Trace {
    /// A trace with one shard per sending endpoint (`shards` =
    /// [`crate::fabric::endpoint_count`], the `endpoint_index` domain
    /// size). Public so out-of-crate backends (e.g. `armci-netfab`) can
    /// allocate a trace compatible with the emulator's tooling.
    pub fn new(shards: usize) -> Self {
        Trace { t0: Instant::now(), shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect() }
    }

    /// Record one send into the sender's shard (`shard` is the sender's
    /// dense endpoint index).
    pub fn record(&self, shard: usize, src: Endpoint, dst: Endpoint, tag: Tag, size: usize) {
        let ev = TraceEvent { at: self.t0.elapsed(), src, dst, tag, size };
        self.shards[shard].lock().unwrap().push(ev);
    }

    /// Visit every event recorded so far, shard by shard (each shard in
    /// send order).
    fn for_each(&self, mut f: impl FnMut(&TraceEvent)) {
        for shard in &self.shards {
            for ev in shard.lock().unwrap().iter() {
                f(ev);
            }
        }
    }

    /// Copy out everything recorded so far, merged across senders in
    /// timestamp order (ties keep per-sender send order — the sort is
    /// stable and each shard is already ordered).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        self.for_each(|ev| out.push(*ev));
        out.sort_by_key(|ev| ev.at);
        out
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard everything recorded so far (e.g. to trace only a phase).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }

    /// Message counts per (src, dst) pair.
    pub fn pair_counts(&self) -> HashMap<(Endpoint, Endpoint), u64> {
        let mut out = HashMap::new();
        self.for_each(|ev| *out.entry((ev.src, ev.dst)).or_insert(0) += 1);
        out
    }

    /// Messages sent by each endpoint.
    pub fn sent_by(&self, ep: Endpoint) -> u64 {
        let mut n = 0;
        self.for_each(|ev| n += u64::from(ev.src == ep));
        n
    }

    /// Total messages matching a tag predicate.
    pub fn count_tags(&self, mut pred: impl FnMut(Tag) -> bool) -> u64 {
        let mut n = 0;
        self.for_each(|ev| n += u64::from(pred(ev.tag)));
        n
    }

    /// Total payload bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        let mut n = 0;
        self.for_each(|ev| n += ev.size as u64);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, ProcId};

    fn ep(p: u32) -> Endpoint {
        Endpoint::Proc(ProcId(p))
    }

    #[test]
    fn records_and_aggregates() {
        let t = Trace::new(2);
        assert!(t.is_empty());
        t.record(0, ep(0), ep(1), Tag(5), 10);
        t.record(0, ep(0), ep(1), Tag(5), 20);
        t.record(1, ep(1), Endpoint::Server(NodeId(0)), Tag(9), 5);
        assert_eq!(t.len(), 3);
        assert_eq!(t.pair_counts()[&(ep(0), ep(1))], 2);
        assert_eq!(t.sent_by(ep(0)), 2);
        assert_eq!(t.sent_by(ep(1)), 1);
        assert_eq!(t.count_tags(|tag| tag == Tag(5)), 2);
        assert_eq!(t.total_bytes(), 35);
    }

    #[test]
    fn clear_resets() {
        let t = Trace::new(2);
        t.record(0, ep(0), ep(1), Tag(1), 1);
        t.record(1, ep(1), ep(0), Tag(1), 1);
        t.clear();
        assert!(t.is_empty());
        assert!(t.pair_counts().is_empty());
    }

    #[test]
    fn snapshot_merges_shards_in_timestamp_order() {
        let t = Trace::new(3);
        // Interleave shards; per-shard order plus the timestamp sort must
        // yield a globally monotone snapshot.
        for i in 0..10 {
            t.record((i % 3) as usize, ep(i % 3), ep(1), Tag(i), 0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 10);
        for w in snap.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
