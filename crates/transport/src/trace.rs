//! Optional message tracing.
//!
//! When enabled on the [`crate::ClusterBuilder`], every send is recorded
//! with a timestamp, endpoints, tag and payload size. Traces let tests
//! and the reproduction harness verify the *structure* of an algorithm —
//! e.g. that a binary-exchange barrier really only talks to XOR partners,
//! or that `ARMCI_Barrier()` sends exactly `2·log2(N)` messages per
//! process — independently of timing.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::message::{Endpoint, Tag};

/// One recorded send.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Time of the send relative to trace creation.
    pub at: Duration,
    /// Sender.
    pub src: Endpoint,
    /// Destination.
    pub dst: Endpoint,
    /// Protocol tag.
    pub tag: Tag,
    /// Payload bytes.
    pub size: usize,
}

/// A shared, append-only trace of message sends.
pub struct Trace {
    t0: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Trace {
    pub(crate) fn new() -> Self {
        Trace { t0: Instant::now(), events: Mutex::new(Vec::new()) }
    }

    pub(crate) fn record(&self, src: Endpoint, dst: Endpoint, tag: Tag, size: usize) {
        let ev = TraceEvent { at: self.t0.elapsed(), src, dst, tag, size };
        self.events.lock().unwrap().push(ev);
    }

    /// Copy out everything recorded so far (in send order per thread;
    /// interleaving across threads follows lock acquisition order).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard everything recorded so far (e.g. to trace only a phase).
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }

    /// Message counts per (src, dst) pair.
    pub fn pair_counts(&self) -> HashMap<(Endpoint, Endpoint), u64> {
        let mut out = HashMap::new();
        for ev in self.events.lock().unwrap().iter() {
            *out.entry((ev.src, ev.dst)).or_insert(0) += 1;
        }
        out
    }

    /// Messages sent by each endpoint.
    pub fn sent_by(&self, ep: Endpoint) -> u64 {
        self.events.lock().unwrap().iter().filter(|e| e.src == ep).count() as u64
    }

    /// Total messages matching a tag predicate.
    pub fn count_tags(&self, mut pred: impl FnMut(Tag) -> bool) -> u64 {
        self.events.lock().unwrap().iter().filter(|e| pred(e.tag)).count() as u64
    }

    /// Total payload bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.events.lock().unwrap().iter().map(|e| e.size as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, ProcId};

    fn ep(p: u32) -> Endpoint {
        Endpoint::Proc(ProcId(p))
    }

    #[test]
    fn records_and_aggregates() {
        let t = Trace::new();
        assert!(t.is_empty());
        t.record(ep(0), ep(1), Tag(5), 10);
        t.record(ep(0), ep(1), Tag(5), 20);
        t.record(ep(1), Endpoint::Server(NodeId(0)), Tag(9), 5);
        assert_eq!(t.len(), 3);
        assert_eq!(t.pair_counts()[&(ep(0), ep(1))], 2);
        assert_eq!(t.sent_by(ep(0)), 2);
        assert_eq!(t.sent_by(ep(1)), 1);
        assert_eq!(t.count_tags(|tag| tag == Tag(5)), 2);
        assert_eq!(t.total_bytes(), 35);
    }

    #[test]
    fn clear_resets() {
        let t = Trace::new();
        t.record(ep(0), ep(1), Tag(1), 1);
        t.clear();
        assert!(t.is_empty());
        assert!(t.pair_counts().is_empty());
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let t = Trace::new();
        for i in 0..10 {
            t.record(ep(0), ep(1), Tag(i), 0);
        }
        let snap = t.snapshot();
        for w in snap.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
