//! Message payload storage for the zero-copy wire path.
//!
//! [`Body`] is the payload type carried by [`crate::Msg`]. It exists so the
//! layers above the transport can hand a message to the fabric without a
//! per-message heap allocation:
//!
//! * **Inline** — payloads up to [`Body::INLINE_CAP`] bytes live directly
//!   in the enum. Every fixed-size synchronization message in the ARMCI
//!   protocol (PutU64 = 25 B, Rmw ≤ 50 B, lock/unlock = 9 B, fence = 1 B,
//!   acks ≤ 8 B) fits, so the paper's hot sync operations move through the
//!   fabric with zero heap traffic.
//! * **Vec** — an owned buffer, moved in for free via `From<Vec<u8>>`.
//!   This keeps every pre-existing `send(.., vec![..])` call site working
//!   unchanged.
//! * **Shared** — a sliceable view into an `Arc<Vec<u8>>`. Cloning is a
//!   refcount bump; a [`BodyPool`] uses the refcount to *reclaim* the
//!   buffer once the receiver has dropped its view, which is what makes
//!   pooled encode buffers and pooled Get-reply scratch possible.
//!
//! `Body` dereferences to `[u8]` and compares like a byte slice, so
//! receiving code is agnostic to which representation arrived.

use std::sync::Arc;

/// Inline small-payload capacity, sized to cover every fixed-size ARMCI
/// sync request (the largest, a pair-CAS RMW, is 50 bytes on the wire).
const INLINE_CAP: usize = 56;

#[derive(Clone)]
enum Repr {
    /// Small payload stored in place.
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// Exclusively owned heap buffer.
    Vec(Vec<u8>),
    /// Shared slice `buf[start..end]` of a pooled or broadcast buffer.
    Shared { buf: Arc<Vec<u8>>, start: u32, end: u32 },
}

/// A message payload: inline, owned, or a shared slice (see module docs).
#[derive(Clone)]
pub struct Body(Repr);

impl Body {
    /// Largest payload stored without touching the heap.
    pub const INLINE_CAP: usize = INLINE_CAP;

    /// The empty payload (no allocation).
    #[inline]
    pub fn empty() -> Self {
        Body(Repr::Inline { len: 0, buf: [0; INLINE_CAP] })
    }

    /// Copy `data` into a new body: inline if it fits, owned otherwise.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..data.len()].copy_from_slice(data);
            Body(Repr::Inline { len: data.len() as u8, buf })
        } else {
            Body(Repr::Vec(data.to_vec()))
        }
    }

    /// Wrap a whole shared buffer without copying. Cloning the result is a
    /// refcount bump; the buffer is reclaimable by a [`BodyPool`] once all
    /// clones drop.
    #[inline]
    pub fn from_shared(buf: Arc<Vec<u8>>) -> Self {
        let end = u32::try_from(buf.len()).expect("body larger than 4 GiB");
        Body(Repr::Shared { buf, start: 0, end })
    }

    /// A sub-slice view `[start, end)` of this body, sharing storage where
    /// the representation allows it (no copy for `Shared`, inline copy for
    /// small results).
    pub fn slice(&self, start: usize, end: usize) -> Body {
        assert!(start <= end && end <= self.len(), "slice out of range");
        match &self.0 {
            Repr::Shared { buf, start: s0, .. } => {
                Body(Repr::Shared { buf: Arc::clone(buf), start: s0 + start as u32, end: s0 + end as u32 })
            }
            _ => Body::copy_from_slice(&self[start..end]),
        }
    }

    /// Extract an owned `Vec<u8>`.
    ///
    /// Free for the `Vec` representation; for a `Shared` body covering the
    /// whole buffer with no other holders the allocation is stolen from
    /// the `Arc`; otherwise the bytes are copied.
    pub fn into_vec(self) -> Vec<u8> {
        match self.0 {
            Repr::Inline { len, buf } => buf[..len as usize].to_vec(),
            Repr::Vec(v) => v,
            Repr::Shared { buf, start, end } => {
                if start == 0 && end as usize == buf.len() {
                    match Arc::try_unwrap(buf) {
                        Ok(v) => v,
                        Err(shared) => shared[..].to_vec(),
                    }
                } else {
                    buf[start as usize..end as usize].to_vec()
                }
            }
        }
    }

    /// Payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Vec(v) => v.len(),
            Repr::Shared { start, end, .. } => (end - start) as usize,
        }
    }

    /// True if the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Body {
    fn default() -> Self {
        Body::empty()
    }
}

impl std::ops::Deref for Body {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Vec(v) => v,
            Repr::Shared { buf, start, end } => &buf[*start as usize..*end as usize],
        }
    }
}

impl AsRef<[u8]> for Body {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Moves the vector in without copying (existing `send(.., vec![..])`
/// call sites keep their exact allocation behaviour).
impl From<Vec<u8>> for Body {
    #[inline]
    fn from(v: Vec<u8>) -> Self {
        Body(Repr::Vec(v))
    }
}

impl From<&[u8]> for Body {
    #[inline]
    fn from(s: &[u8]) -> Self {
        Body::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Body {
    #[inline]
    fn from(a: [u8; N]) -> Self {
        Body::copy_from_slice(&a)
    }
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.0 {
            Repr::Inline { .. } => "inline",
            Repr::Vec(_) => "vec",
            Repr::Shared { .. } => "shared",
        };
        write!(f, "Body[{kind}; {}] {:?}", self.len(), &self[..])
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Body {}

impl PartialEq<[u8]> for Body {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Body {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Body {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Body> for Vec<u8> {
    fn eq(&self, other: &Body) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Body {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

/// A pool of reusable `Arc<Vec<u8>>` encode/scratch buffers.
///
/// `with_buf` hands out a cleared buffer to fill and returns it wrapped in
/// a [`Body`]. A slot is reusable once every `Body` cloned from it has been
/// dropped by the receiver — detected via `Arc::get_mut`, so the scheme is
/// safe by construction: a buffer still referenced anywhere is never
/// recycled. With a pool sized to the protocol's pipelining depth (requests
/// in flight per endpoint), steady-state sends allocate nothing; when every
/// slot is still in flight the pool falls back to one fresh allocation.
pub struct BodyPool {
    slots: Vec<Arc<Vec<u8>>>,
    /// Round-robin scan start, so consecutive sends spread over the slots.
    next: usize,
}

impl BodyPool {
    /// A pool with `slots` reusable buffers.
    pub fn new(slots: usize) -> Self {
        BodyPool { slots: (0..slots).map(|_| Arc::new(Vec::new())).collect(), next: 0 }
    }

    /// Hand a cleared buffer to `fill`, returning its contents as a
    /// [`Body`]. Allocation-free when a pool slot is free (after per-slot
    /// warm-up); falls back to a fresh buffer when all slots are still
    /// held by in-flight messages. Results that fit inline come back as an
    /// inline body — the slot is released immediately, so small fixed-size
    /// messages never tie up (or exhaust) the pool.
    pub fn with_buf(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> Body {
        let n = self.slots.len();
        for probe in 0..n {
            let i = (self.next + probe) % n;
            // get_mut succeeds only while we hold the sole reference, i.e.
            // every Body handed out from this slot has been dropped.
            if let Some(buf) = Arc::get_mut(&mut self.slots[i]) {
                buf.clear();
                fill(buf);
                if buf.len() <= INLINE_CAP {
                    return Body::copy_from_slice(buf);
                }
                self.next = (i + 1) % n;
                return Body::from_shared(Arc::clone(&self.slots[i]));
            }
        }
        // Every slot in flight: take the one allocation the budget allows.
        let mut fresh = Vec::new();
        fill(&mut fresh);
        if fresh.len() <= INLINE_CAP {
            return Body::copy_from_slice(&fresh);
        }
        Body::from(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_vec_and_shared_agree() {
        let small = Body::copy_from_slice(&[1, 2, 3]);
        let owned = Body::from(vec![1, 2, 3]);
        let shared = Body::from_shared(Arc::new(vec![1, 2, 3]));
        assert_eq!(small, owned);
        assert_eq!(owned, shared);
        assert_eq!(small, vec![1, 2, 3]);
        assert_eq!(small, [1, 2, 3]);
        assert_eq!(small[0], 1);
        assert_eq!(small.len(), 3);
        assert!(Body::empty().is_empty());
    }

    #[test]
    fn small_payloads_stay_inline_large_spill() {
        let at_cap = Body::copy_from_slice(&[7u8; Body::INLINE_CAP]);
        assert!(matches!(at_cap.0, Repr::Inline { .. }));
        let over = Body::copy_from_slice(&[7u8; Body::INLINE_CAP + 1]);
        assert!(matches!(over.0, Repr::Vec(_)));
    }

    #[test]
    fn into_vec_steals_unique_shared_allocation() {
        let v = vec![9u8; 100];
        let ptr = v.as_ptr();
        let body = Body::from_shared(Arc::new(v));
        let back = body.into_vec();
        assert_eq!(back.as_ptr(), ptr, "unique full-range shared must not copy");

        let arc = Arc::new(vec![1u8, 2, 3]);
        let held = Arc::clone(&arc);
        assert_eq!(Body::from_shared(arc).into_vec(), vec![1, 2, 3]);
        drop(held);
    }

    #[test]
    fn slice_of_shared_shares_storage() {
        let body = Body::from_shared(Arc::new((0u8..100).collect()));
        let s = body.slice(10, 20);
        assert_eq!(&s[..], &(10u8..20).collect::<Vec<_>>()[..]);
        let s2 = s.slice(2, 4);
        assert_eq!(&s2[..], &[12, 13]);
    }

    #[test]
    fn pool_reuses_freed_slots_and_survives_exhaustion() {
        const BIG: usize = Body::INLINE_CAP + 1;
        let mut pool = BodyPool::new(2);
        // Warm up both slots, then drop the bodies.
        let a = pool.with_buf(|b| b.extend_from_slice(&[1; BIG]));
        let b = pool.with_buf(|b| b.extend_from_slice(&[2; BIG]));
        assert_eq!(a, vec![1; BIG]);
        assert_eq!(b, vec![2; BIG]);
        let a_ptr = a.as_ptr();
        drop(a);
        drop(b);
        // Freed slot is recycled: same backing allocation comes back.
        let c = pool.with_buf(|b| b.extend_from_slice(&[3; BIG]));
        let d = pool.with_buf(|b| b.extend_from_slice(&[4; BIG]));
        assert!(c.as_ptr() == a_ptr || d.as_ptr() == a_ptr);
        // Exhaustion: both slots held -> fallback still yields correct data.
        let e = pool.with_buf(|b| b.extend_from_slice(&[5; BIG]));
        assert_eq!(c, vec![3; BIG]);
        assert_eq!(d, vec![4; BIG]);
        assert_eq!(e, vec![5; BIG]);
    }

    #[test]
    fn pool_small_results_come_back_inline() {
        let mut pool = BodyPool::new(1);
        let a = pool.with_buf(|b| b.extend_from_slice(&[1, 2, 3]));
        assert!(matches!(a.0, Repr::Inline { .. }));
        // Slot was released immediately: holding `a` does not force the
        // next small fill into the fallback path.
        let b = pool.with_buf(|b| b.extend_from_slice(&[4]));
        assert!(matches!(b.0, Repr::Inline { .. }));
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(b, vec![4]);
    }
}
