//! `serde` implementations for the config types that cross process
//! boundaries: the netfab launcher serializes the cluster description and
//! ships it to spawned node processes in an environment variable.
//!
//! The vendored serde shim has no derive macro, so the impls are written
//! out by hand; the encoded shape matches what `#[derive(Serialize,
//! Deserialize)]` would produce on the same structs (a JSON object per
//! struct, `{secs, nanos}` for `Duration`).

use serde::{Deserialize, Error, Serialize, Value};

use crate::ids::Topology;
use crate::latency::LatencyModel;

impl Serialize for Topology {
    fn to_value(&self) -> Value {
        Value::map(vec![
            ("nodes", Value::U64(self.nnodes() as u64)),
            ("procs_per_node", Value::U64(self.procs_per_node() as u64)),
        ])
    }
}

impl Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let nodes = u32::from_value(v.field("nodes")?)?;
        let ppn = u32::from_value(v.field("procs_per_node")?)?;
        if nodes == 0 || ppn == 0 {
            return Err(Error::new("topology dimensions must be positive"));
        }
        Ok(Topology::new(nodes, ppn))
    }
}

impl Serialize for LatencyModel {
    fn to_value(&self) -> Value {
        Value::map(vec![
            ("inter_node", self.inter_node.to_value()),
            ("per_byte", self.per_byte.to_value()),
            ("intra_node", self.intra_node.to_value()),
            ("jitter", self.jitter.to_value()),
        ])
    }
}

impl Deserialize for LatencyModel {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(LatencyModel {
            inter_node: Deserialize::from_value(v.field("inter_node")?)?,
            per_byte: Deserialize::from_value(v.field("per_byte")?)?,
            intra_node: Deserialize::from_value(v.field("intra_node")?)?,
            jitter: Deserialize::from_value(v.field("jitter")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn topology_roundtrip() {
        let t = Topology::new(4, 2);
        let json = serde::to_string(&t);
        assert_eq!(serde::from_str::<Topology>(&json), Ok(t));
    }

    #[test]
    fn topology_rejects_zero_dims() {
        assert!(serde::from_str::<Topology>(r#"{"nodes":0,"procs_per_node":1}"#).is_err());
    }

    #[test]
    fn latency_model_roundtrip() {
        let m = LatencyModel::myrinet_like().with_jitter(Duration::from_nanos(123));
        let json = serde::to_string(&m);
        assert_eq!(serde::from_str::<LatencyModel>(&json), Ok(m));
    }
}
