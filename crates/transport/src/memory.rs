//! Registered memory segments — the emulation of ARMCI global memory.
//!
//! In real ARMCI, each user process registers (pins) memory regions that
//! remote processes address as `(proc, address)` tuples; on a node, those
//! regions are shared between the user processes and the server thread.
//! Here a [`Segment`] is a word-atomic byte array (`[AtomicU64]`) shared by
//! `Arc`, and the [`MemoryRegistry`] maps `(proc, segment id)` to segments.
//!
//! ## Why atomics instead of raw bytes
//!
//! One-sided communication is racy by construction: the server thread may
//! deposit a put into a region while a local process reads it. Backing
//! segments with `AtomicU64` words accessed with `Relaxed` loads/stores
//! keeps every such race *defined behaviour* in Rust's memory model while
//! compiling to plain loads and stores on every major ISA. Synchronization
//! words (fence counters, lock words) additionally use Acquire/Release
//! through the dedicated accessors.
//!
//! Bulk transfers are word-granularity atomic: a concurrent reader can see
//! a mix of old and new *words* but never a torn word — the same guarantee
//! RDMA hardware gives.
//!
//! ## Pair (128-bit) operations
//!
//! The paper extended ARMCI with atomic operations on *pairs of longs* so
//! MCS queue pointers, which are `(proc, address)` tuples, could be swapped
//! and compare&swapped atomically. We reproduce that interface via
//! per-segment stripe locks (see [`Segment::pair_swap`]); the packed
//! single-word encoding in `armci-core::gptr` is the preferred alternative
//! and the two are ablated against each other in the benches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::ids::ProcId;

/// Index of a registered segment within one process, assigned in
/// registration order. Collective allocation (every process registering in
/// lockstep, as `ARMCI_Malloc` does) therefore yields the same id
/// everywhere.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SegId(pub u32);

/// Number of stripe locks serializing pair (128-bit) operations.
const PAIR_STRIPES: usize = 64;

/// Backing storage for a segment's atomic words: either an owned heap
/// allocation (the default) or a *foreign* region such as an `mmap`ed
/// shared-memory file supplied by the shm data plane. The foreign variant
/// keeps its owner alive so the pointer stays valid for the segment's
/// lifetime.
enum WordStore {
    Heap(Box<[AtomicU64]>),
    Foreign { ptr: *const AtomicU64, count: usize, _owner: Box<dyn std::any::Any + Send + Sync> },
}

// Foreign storage is shared memory reached only through `&AtomicU64`; the
// raw pointer carries no thread affinity and the owner is Send + Sync.
unsafe impl Send for WordStore {}
unsafe impl Sync for WordStore {}

impl WordStore {
    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        match self {
            WordStore::Heap(words) => &words[i],
            WordStore::Foreign { ptr, count, .. } => {
                assert!(i < *count, "word index {i} out of bounds ({count} words)");
                // SAFETY: in-bounds per the assert; validity and alignment
                // are the `from_foreign_words` caller's contract, and the
                // owner box keeps the mapping alive.
                unsafe { &*ptr.add(i) }
            }
        }
    }

    /// Borrow `n` consecutive word cells starting at `w0` — one bounds
    /// check per *bulk transfer* instead of one per word, which is what
    /// lets the byte-copy loops below run over a plain slice.
    #[inline]
    fn words(&self, w0: usize, n: usize) -> &[AtomicU64] {
        match self {
            WordStore::Heap(words) => &words[w0..w0 + n],
            WordStore::Foreign { ptr, count, .. } => {
                assert!(
                    w0.checked_add(n).is_some_and(|end| end <= *count),
                    "word range {w0}+{n} out of bounds ({count} words)"
                );
                // SAFETY: in-bounds per the assert; same contract as
                // `word` above, extended over a contiguous range.
                unsafe { std::slice::from_raw_parts(ptr.add(w0), n) }
            }
        }
    }
}

/// A registered global-memory segment: `len` bytes backed by 64-bit atomic
/// words, plus stripe locks for the paper's paired-long atomics.
///
/// Note the stripe locks are **process-local**: pair (128-bit) operations
/// are atomic only among users of the same `Segment` value. Segments
/// backed by cross-process shared memory must therefore keep pair ops on
/// the owner's server (the wire path) — the shm plane routes accordingly.
pub struct Segment {
    store: WordStore,
    len: usize,
    pair_stripes: Box<[Mutex<()>]>,
}

impl Segment {
    /// Allocate a zero-filled segment of `len` bytes.
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(8);
        let words: Box<[AtomicU64]> = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        let pair_stripes: Box<[Mutex<()>]> = (0..PAIR_STRIPES).map(|_| Mutex::new(())).collect();
        Segment { store: WordStore::Heap(words), len, pair_stripes }
    }

    /// Build a segment over `words` foreign `AtomicU64` cells at `ptr`
    /// (e.g. an `mmap`ed shared-memory file), exposing `len` bytes.
    /// `owner` is held for the segment's lifetime to keep `ptr` valid.
    ///
    /// # Safety
    /// `ptr` must be 8-aligned and point to `words` cells that are
    /// readable and writable for as long as `owner` lives, and the memory
    /// must only ever be accessed as `u64` atomics (which any other
    /// `Segment` mapping of the same region guarantees).
    pub unsafe fn from_foreign_words(
        ptr: *const AtomicU64,
        words: usize,
        len: usize,
        owner: Box<dyn std::any::Any + Send + Sync>,
    ) -> Self {
        assert!(len.div_ceil(8) <= words, "len {len} exceeds {words} foreign words");
        assert!((ptr as usize).is_multiple_of(8), "foreign word storage must be 8-aligned");
        let pair_stripes: Box<[Mutex<()>]> = (0..PAIR_STRIPES).map(|_| Mutex::new(())).collect();
        Segment { store: WordStore::Foreign { ptr, count: words, _owner: owner }, len, pair_stripes }
    }

    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        self.store.word(i)
    }

    /// Segment length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the segment has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check_range(&self, offset: usize, n: usize) {
        assert!(
            offset.checked_add(n).is_some_and(|end| end <= self.len),
            "segment access out of bounds: offset {offset} + {n} > len {}",
            self.len
        );
    }

    /// Copy `src` into the segment starting at byte `offset`.
    ///
    /// Word-atomic: concurrent readers never see torn 64-bit words, but may
    /// see a mixture of old and new words (the RDMA put guarantee).
    /// Interior full words are plain relaxed stores; partial words at the
    /// edges are merged with a CAS loop so concurrent writes to *adjacent*
    /// bytes in the same word are not lost.
    pub fn write_bytes(&self, offset: usize, src: &[u8]) {
        self.check_range(offset, src.len());
        let mut off = offset;
        let mut src = src;

        // Leading partial word.
        let head = off % 8;
        if head != 0 && !src.is_empty() {
            let n = (8 - head).min(src.len());
            self.merge_partial(off / 8, head, &src[..n]);
            off += n;
            src = &src[n..];
        }
        // Full words: resolve the cell slice once, then stream relaxed
        // stores over it (word-atomicity per cell is unchanged).
        let mut w = off / 8;
        let nfull = src.len() / 8;
        if nfull > 0 {
            for (cell, chunk) in self.store.words(w, nfull).iter().zip(src.chunks_exact(8)) {
                cell.store(u64::from_le_bytes(chunk.try_into().unwrap()), Ordering::Relaxed);
            }
            w += nfull;
            src = &src[nfull * 8..];
        }
        // Trailing partial word.
        if !src.is_empty() {
            self.merge_partial(w, 0, src);
        }
    }

    /// Merge `bytes` into word `w` starting at byte lane `lane` (LE order).
    fn merge_partial(&self, w: usize, lane: usize, bytes: &[u8]) {
        debug_assert!(lane + bytes.len() <= 8);
        let mut val = 0u64;
        let mut mask = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            val |= (b as u64) << (8 * (lane + i));
            mask |= 0xFFu64 << (8 * (lane + i));
        }
        let word = self.word(w);
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let new = (cur & !mask) | val;
            match word.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Copy `dst.len()` bytes from the segment at `offset` into `dst`.
    pub fn read_bytes(&self, offset: usize, dst: &mut [u8]) {
        self.check_range(offset, dst.len());
        let mut off = offset;
        let mut dst = &mut dst[..];

        let head = off % 8;
        if head != 0 && !dst.is_empty() {
            let n = (8 - head).min(dst.len());
            let w = self.word(off / 8).load(Ordering::Relaxed).to_le_bytes();
            dst[..n].copy_from_slice(&w[head..head + n]);
            off += n;
            dst = &mut dst[n..];
        }
        let mut w = off / 8;
        let nfull = dst.len() / 8;
        if nfull > 0 {
            let (full, rest) = dst.split_at_mut(nfull * 8);
            for (cell, chunk) in self.store.words(w, nfull).iter().zip(full.chunks_exact_mut(8)) {
                chunk.copy_from_slice(&cell.load(Ordering::Relaxed).to_le_bytes());
            }
            w += nfull;
            dst = rest;
        }
        if !dst.is_empty() {
            let v = self.word(w).load(Ordering::Relaxed).to_le_bytes();
            let n = dst.len();
            dst.copy_from_slice(&v[..n]);
        }
    }

    /// Convenience: read a little-endian `u64` at an 8-aligned offset.
    #[inline]
    pub fn read_u64(&self, offset: usize) -> u64 {
        self.atomic_u64(offset).load(Ordering::Acquire)
    }

    /// Convenience: write a little-endian `u64` at an 8-aligned offset.
    #[inline]
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.atomic_u64(offset).store(v, Ordering::Release)
    }

    /// Borrow the atomic word at 8-aligned byte `offset`.
    ///
    /// This is how synchronization variables (ticket/counter words, MCS
    /// `Lock`/`next`/`locked` cells, `op_done` counters) are accessed by
    /// processes that share the node with the segment owner.
    ///
    /// # Panics
    /// Panics if `offset` is not 8-aligned or out of bounds.
    #[inline]
    pub fn atomic_u64(&self, offset: usize) -> &AtomicU64 {
        assert!(offset.is_multiple_of(8), "atomic access requires 8-aligned offset, got {offset}");
        self.check_range(offset, 8);
        self.word(offset / 8)
    }

    /// Atomic fetch-and-add on the `u64` at `offset` (AcqRel), returning
    /// the previous value. This is ARMCI's fetch-and-increment with an
    /// arbitrary addend.
    #[inline]
    pub fn fetch_add_u64(&self, offset: usize, add: u64) -> u64 {
        self.atomic_u64(offset).fetch_add(add, Ordering::AcqRel)
    }

    /// Atomic swap of the `u64` at `offset` (AcqRel), returning the
    /// previous value.
    #[inline]
    pub fn swap_u64(&self, offset: usize, new: u64) -> u64 {
        self.atomic_u64(offset).swap(new, Ordering::AcqRel)
    }

    /// Atomic compare&swap of the `u64` at `offset` (AcqRel / Acquire).
    /// Returns the value observed before the operation; the swap succeeded
    /// iff that equals `expect`.
    #[inline]
    pub fn compare_swap_u64(&self, offset: usize, expect: u64, new: u64) -> u64 {
        match self.atomic_u64(offset).compare_exchange(expect, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Atomic add of an `f64` (bit-stored in a word) at `offset` via a CAS
    /// loop. Used by `accumulate` so that concurrent accumulates from the
    /// server thread and from node-local processes do not lose updates.
    pub fn fetch_add_f64(&self, offset: usize, add: f64) -> f64 {
        let word = self.atomic_u64(offset);
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let new = (old + add).to_bits();
            match word.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return old,
                Err(c) => cur = c,
            }
        }
    }

    /// Atomic add of an `i64` at `offset`, returning the previous value.
    #[inline]
    pub fn fetch_add_i64(&self, offset: usize, add: i64) -> i64 {
        self.atomic_u64(offset).fetch_add(add as u64, Ordering::AcqRel) as i64
    }

    #[inline]
    fn pair_stripe(&self, offset: usize) -> &Mutex<()> {
        &self.pair_stripes[(offset / 16) % PAIR_STRIPES]
    }

    /// Atomically swap the *pair* of `u64`s at 16-aligned `offset`,
    /// returning the previous pair.
    ///
    /// This reproduces the paper's new "atomic memory operations which
    /// operate on pairs of long variables". Atomicity holds with respect
    /// to the other `pair_*` operations (they serialize on a stripe lock);
    /// mixing pair and single-word atomics on the same cell is a usage
    /// error, just as it would have been in ARMCI.
    pub fn pair_swap(&self, offset: usize, new: [u64; 2]) -> [u64; 2] {
        assert!(offset.is_multiple_of(16), "pair access requires 16-aligned offset, got {offset}");
        self.check_range(offset, 16);
        let _g = self.pair_stripe(offset).lock();
        let w = offset / 8;
        let old = [self.word(w).load(Ordering::Acquire), self.word(w + 1).load(Ordering::Acquire)];
        self.word(w).store(new[0], Ordering::Release);
        self.word(w + 1).store(new[1], Ordering::Release);
        old
    }

    /// Atomically compare&swap the pair of `u64`s at 16-aligned `offset`.
    /// Returns the pair observed before the operation; the swap succeeded
    /// iff that equals `expect`.
    pub fn pair_compare_swap(&self, offset: usize, expect: [u64; 2], new: [u64; 2]) -> [u64; 2] {
        assert!(offset.is_multiple_of(16), "pair access requires 16-aligned offset, got {offset}");
        self.check_range(offset, 16);
        let _g = self.pair_stripe(offset).lock();
        let w = offset / 8;
        let old = [self.word(w).load(Ordering::Acquire), self.word(w + 1).load(Ordering::Acquire)];
        if old == expect {
            self.word(w).store(new[0], Ordering::Release);
            self.word(w + 1).store(new[1], Ordering::Release);
        }
        old
    }

    /// Atomically read the pair of `u64`s at 16-aligned `offset`.
    pub fn pair_read(&self, offset: usize) -> [u64; 2] {
        assert!(offset.is_multiple_of(16), "pair access requires 16-aligned offset, got {offset}");
        self.check_range(offset, 16);
        let _g = self.pair_stripe(offset).lock();
        let w = offset / 8;
        [self.word(w).load(Ordering::Acquire), self.word(w + 1).load(Ordering::Acquire)]
    }
}

/// Map from `(process, segment id)` to segments, shared by every thread in
/// the emulated cluster.
///
/// Registration is per-process and ordered, so SPMD collective allocations
/// produce identical ids on every rank. Lookup is lock-light (read lock)
/// because it sits on the critical path of every local and server-side
/// memory operation.
pub struct MemoryRegistry {
    per_proc: RwLock<Vec<Vec<Arc<Segment>>>>,
}

impl MemoryRegistry {
    /// Create a registry for `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        MemoryRegistry { per_proc: RwLock::new(vec![Vec::new(); nprocs]) }
    }

    /// Register a new segment of `len` bytes owned by `proc`; returns its
    /// id (dense, in registration order per process).
    pub fn register(&self, proc: ProcId, len: usize) -> (SegId, Arc<Segment>) {
        let seg = Arc::new(Segment::new(len));
        let id = self.register_segment(proc, seg.clone());
        (id, seg)
    }

    /// Register an already-built segment (e.g. one backed by shared
    /// memory) owned by `proc`; returns its id (dense, in registration
    /// order per process).
    pub fn register_segment(&self, proc: ProcId, seg: Arc<Segment>) -> SegId {
        let mut map = self.per_proc.write();
        let list = &mut map[proc.idx()];
        let id = SegId(list.len() as u32);
        list.push(seg);
        id
    }

    /// Look up a segment. Panics if it was never registered — addressing
    /// unregistered remote memory is a program bug, as in ARMCI.
    pub fn lookup(&self, proc: ProcId, seg: SegId) -> Arc<Segment> {
        let map = self.per_proc.read();
        map[proc.idx()]
            .get(seg.0 as usize)
            .unwrap_or_else(|| panic!("segment {seg:?} of {proc} not registered"))
            .clone()
    }

    /// Number of segments currently registered by `proc`.
    pub fn count_for(&self, proc: ProcId) -> usize {
        self.per_proc.read()[proc.idx()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_aligned() {
        let s = Segment::new(64);
        let data: Vec<u8> = (0..32).collect();
        s.write_bytes(8, &data);
        let mut out = vec![0u8; 32];
        s.read_bytes(8, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_unaligned_offsets_and_lengths() {
        let s = Segment::new(128);
        for off in 0..16 {
            for len in 0..24 {
                let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_add(off as u8)).collect();
                s.write_bytes(off, &data);
                let mut out = vec![0u8; len];
                s.read_bytes(off, &mut out);
                assert_eq!(out, data, "off={off} len={len}");
            }
        }
    }

    #[test]
    fn partial_writes_do_not_clobber_neighbours() {
        let s = Segment::new(24);
        s.write_bytes(0, &[0xAA; 24]);
        s.write_bytes(5, &[0xBB; 3]); // inside word 0 tail + word-boundary
        let mut out = vec![0u8; 24];
        s.read_bytes(0, &mut out);
        assert_eq!(&out[..5], &[0xAA; 5]);
        assert_eq!(&out[5..8], &[0xBB; 3]);
        assert_eq!(&out[8..], &[0xAA; 16]);
    }

    #[test]
    fn atomic_word_ops() {
        let s = Segment::new(32);
        assert_eq!(s.fetch_add_u64(8, 5), 0);
        assert_eq!(s.fetch_add_u64(8, 5), 5);
        assert_eq!(s.swap_u64(8, 99), 10);
        assert_eq!(s.compare_swap_u64(8, 99, 1), 99);
        assert_eq!(s.read_u64(8), 1);
        assert_eq!(s.compare_swap_u64(8, 99, 2), 1, "failed CAS returns observed value");
        assert_eq!(s.read_u64(8), 1);
    }

    #[test]
    fn f64_and_i64_accumulate() {
        let s = Segment::new(16);
        s.write_u64(0, 1.5f64.to_bits());
        let prev = s.fetch_add_f64(0, 2.25);
        assert_eq!(prev, 1.5);
        assert_eq!(f64::from_bits(s.read_u64(0)), 3.75);

        s.write_u64(8, (-7i64) as u64);
        assert_eq!(s.fetch_add_i64(8, 3), -7);
        assert_eq!(s.read_u64(8) as i64, -4);
    }

    #[test]
    fn pair_swap_and_cas() {
        let s = Segment::new(64);
        assert_eq!(s.pair_swap(16, [1, 2]), [0, 0]);
        assert_eq!(s.pair_read(16), [1, 2]);
        // Failed CAS leaves the pair alone and reports what it saw.
        assert_eq!(s.pair_compare_swap(16, [9, 9], [3, 4]), [1, 2]);
        assert_eq!(s.pair_read(16), [1, 2]);
        // Successful CAS.
        assert_eq!(s.pair_compare_swap(16, [1, 2], [3, 4]), [1, 2]);
        assert_eq!(s.pair_read(16), [3, 4]);
    }

    #[test]
    #[should_panic]
    fn unaligned_atomic_panics() {
        Segment::new(16).atomic_u64(4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        Segment::new(16).write_bytes(12, &[0; 8]);
    }

    #[test]
    fn foreign_backed_segment_shares_storage() {
        let backing: Arc<[AtomicU64]> = (0..8).map(|_| AtomicU64::new(0)).collect();
        let owner: Box<dyn std::any::Any + Send + Sync> = Box::new(backing.clone());
        let s = unsafe { Segment::from_foreign_words(backing.as_ptr(), 8, 60, owner) };
        assert_eq!(s.len(), 60);
        // Writes through the segment land in the shared backing store.
        s.write_bytes(0, &[0xAB; 16]);
        assert_eq!(backing[0].load(Ordering::Relaxed), u64::from_le_bytes([0xAB; 8]));
        assert_eq!(backing[1].load(Ordering::Relaxed), u64::from_le_bytes([0xAB; 8]));
        // Atomics and unaligned partial-word traffic work as on heap.
        s.write_u64(16, 7);
        assert_eq!(s.fetch_add_u64(16, 1), 7);
        assert_eq!(backing[2].load(Ordering::Relaxed), 8);
        s.write_bytes(57, &[0xCD; 3]);
        let mut out = [0u8; 3];
        s.read_bytes(57, &mut out);
        assert_eq!(out, [0xCD; 3]);
    }

    #[test]
    #[should_panic]
    fn foreign_segment_respects_len_bound() {
        let backing: Arc<[AtomicU64]> = (0..8).map(|_| AtomicU64::new(0)).collect();
        let owner: Box<dyn std::any::Any + Send + Sync> = Box::new(backing.clone());
        let s = unsafe { Segment::from_foreign_words(backing.as_ptr(), 8, 60, owner) };
        s.write_bytes(56, &[0; 8]);
    }

    #[test]
    fn registry_register_segment_interleaves_with_register() {
        let r = MemoryRegistry::new(1);
        let (a, _) = r.register(ProcId(0), 8);
        let b = r.register_segment(ProcId(0), Arc::new(Segment::new(16)));
        assert_eq!(a, SegId(0));
        assert_eq!(b, SegId(1));
        assert_eq!(r.lookup(ProcId(0), b).len(), 16);
    }

    #[test]
    fn registry_ids_are_dense_per_proc() {
        let r = MemoryRegistry::new(2);
        let (a, _) = r.register(ProcId(0), 8);
        let (b, _) = r.register(ProcId(0), 8);
        let (c, _) = r.register(ProcId(1), 8);
        assert_eq!(a, SegId(0));
        assert_eq!(b, SegId(1));
        assert_eq!(c, SegId(0));
        assert_eq!(r.count_for(ProcId(0)), 2);
    }

    #[test]
    fn registry_lookup_returns_same_segment() {
        let r = MemoryRegistry::new(1);
        let (id, seg) = r.register(ProcId(0), 32);
        seg.write_u64(0, 42);
        let seg2 = r.lookup(ProcId(0), id);
        assert_eq!(seg2.read_u64(0), 42);
        assert!(Arc::ptr_eq(&seg, &seg2));
    }

    #[test]
    fn concurrent_word_stores_never_tear() {
        use std::sync::atomic::AtomicBool;
        let s = Arc::new(Segment::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        let patterns = [0x1111_1111_1111_1111u64, 0x2222_2222_2222_2222u64];
        let mut handles = Vec::new();
        for &p in &patterns {
            let s = s.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.write_bytes(0, &p.to_le_bytes());
                }
            }));
        }
        for _ in 0..10_000 {
            let v = s.read_u64(0);
            assert!(v == 0 || patterns.contains(&v), "torn word observed: {v:#x}");
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
