#![warn(missing_docs)]
//! # armci-transport — in-process cluster emulator
//!
//! This crate emulates the hardware/software substrate the IPPS 2003 paper
//! ran on: a cluster of SMP nodes connected by a Myrinet-2000 network driven
//! by the GM message layer. Everything runs inside one OS process:
//!
//! * **Nodes** are simulated; each hosts one or more *user processes*
//!   (OS threads) and one *server thread* (spawned by the layer above,
//!   see `armci-core`), exactly as in Figure 1 of the paper.
//! * **Messages** between endpoints travel over reliable, ordered,
//!   unbounded channels. An inter-node message is stamped with a delivery
//!   time `now + L(size)` computed from a configurable [`LatencyModel`];
//!   the receiving endpoint does not observe it before the stamp. Because
//!   the stamp is applied at *send* time, messages in flight overlap — a
//!   binary-exchange phase costs one latency of wall-clock time, matching
//!   the cost accounting the paper uses throughout.
//! * **Memory segments** are word-atomic byte arrays shared between the
//!   user processes of a node and its server thread (the "shared memory
//!   region" of the paper). Remote processes reach them only through
//!   messages to the server.
//!
//! The crate deliberately knows nothing about ARMCI semantics: it moves
//! tagged byte buffers and hosts registered memory. Protocols (put/get,
//! fence, locks, collectives) live in `armci-msglib` and `armci-core`.
//!
//! ## Determinism and the one-core caveat
//!
//! Channel delivery order is deterministic per sender/receiver pair (FIFO)
//! but interleaving across senders depends on the OS scheduler, like a real
//! cluster. Tests that need exact determinism should use the companion
//! discrete-event simulator crate `armci-simnet` instead. All blocking
//! waits in this crate sleep or yield rather than spin, so the emulation
//! degrades gracefully on machines with fewer cores than simulated
//! processes.

pub mod body;
pub mod cluster;
pub mod fabric;
pub mod ids;
pub mod latency;
pub mod memory;
pub mod message;
mod serde_impls;
pub mod trace;
pub mod wait;

pub use body::{Body, BodyPool};
pub use cluster::{Cluster, ClusterBuilder};
pub use fabric::{endpoint_count, endpoint_index, node_of_endpoint, Mailbox, MailboxBackend, RecvError, WireCounters};
pub use ids::{NodeId, ProcId, Topology};
pub use latency::LatencyModel;
pub use memory::{MemoryRegistry, SegId, Segment};
pub use message::{Endpoint, Msg, Tag};
pub use trace::{Trace, TraceEvent};
