//! Message addressing and framing.
//!
//! The transport moves opaque `(tag, bytes)` pairs between *endpoints*. An
//! endpoint is either a user process or a node's server thread; protocol
//! meaning is assigned entirely by the layers above (tag ranges are
//! documented on [`Tag`]).

use crate::body::Body;
use crate::ids::{NodeId, ProcId};

/// A message destination or source.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A user process, addressed by global rank.
    Proc(ProcId),
    /// The server thread of a node.
    Server(NodeId),
    /// The programmable NIC of a node — the paper's §5 future-work agent
    /// (NIC-based atomic and synchronization operations, paper references 1–5).
    /// Wired on every cluster; only used when the layer above enables
    /// NIC-assisted mode.
    Nic(NodeId),
}

impl Endpoint {
    /// True if this endpoint is a server thread.
    #[inline]
    pub fn is_server(&self) -> bool {
        matches!(self, Endpoint::Server(_))
    }

    /// True if this endpoint is a NIC agent.
    #[inline]
    pub fn is_nic(&self) -> bool {
        matches!(self, Endpoint::Nic(_))
    }

    /// True for any per-node service agent (server thread or NIC).
    #[inline]
    pub fn is_agent(&self) -> bool {
        self.is_server() || self.is_nic()
    }

    /// The process id, if this is a process endpoint.
    #[inline]
    pub fn proc(&self) -> Option<ProcId> {
        match self {
            Endpoint::Proc(p) => Some(*p),
            Endpoint::Server(_) | Endpoint::Nic(_) => None,
        }
    }
}

/// Message tag. Tags discriminate protocols sharing one mailbox, exactly
/// like MPI tags; `Mailbox::recv_match` performs tag matching.
///
/// Tag ranges by convention (enforced only by discipline, as in MPI):
///
/// | range           | owner                                  |
/// |-----------------|----------------------------------------|
/// | `0x0000_xxxx`   | `armci-msglib` collectives             |
/// | `0x0001_xxxx`   | `armci-core` requests and replies      |
/// | `0x0002_xxxx`   | `armci-ga`                             |
/// | `0xFFFF_xxxx`   | transport-internal / tests             |
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// First tag value reserved for `armci-msglib`.
    pub const MSGLIB_BASE: u32 = 0x0000_0000;
    /// First tag value reserved for `armci-core`.
    pub const ARMCI_BASE: u32 = 0x0001_0000;
    /// First tag value reserved for `armci-ga`.
    pub const GA_BASE: u32 = 0x0002_0000;
    /// First tag value reserved for tests and transport internals.
    pub const INTERNAL_BASE: u32 = 0xFFFF_0000;
}

/// A received message: who sent it, its tag, and its payload.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Sending endpoint.
    pub src: Endpoint,
    /// Protocol tag.
    pub tag: Tag,
    /// Opaque payload. [`Body`] dereferences to `[u8]` and is built from a
    /// `Vec<u8>` at no cost, so most code treats it exactly like the
    /// `Vec<u8>` it used to be; see [`crate::body`] for the zero-copy
    /// representations.
    pub body: Body,
}

impl Msg {
    /// Sending process id; panics if the sender was a server.
    ///
    /// Convenience for protocols (like the msglib collectives) that only
    /// ever talk process-to-process.
    #[inline]
    pub fn src_proc(&self) -> ProcId {
        self.src.proc().expect("message sent by a server, not a process")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_kind_queries() {
        assert!(Endpoint::Server(NodeId(0)).is_server());
        assert!(!Endpoint::Proc(ProcId(1)).is_server());
        assert_eq!(Endpoint::Proc(ProcId(3)).proc(), Some(ProcId(3)));
        assert_eq!(Endpoint::Server(NodeId(3)).proc(), None);
    }

    #[test]
    fn tag_ranges_are_disjoint_and_ordered() {
        const {
            assert!(Tag::MSGLIB_BASE < Tag::ARMCI_BASE);
            assert!(Tag::ARMCI_BASE < Tag::GA_BASE);
            assert!(Tag::GA_BASE < Tag::INTERNAL_BASE);
        }
    }

    #[test]
    #[should_panic]
    fn src_proc_panics_for_server() {
        let m = Msg { src: Endpoint::Server(NodeId(0)), tag: Tag(0), body: Body::empty() };
        let _ = m.src_proc();
    }
}
