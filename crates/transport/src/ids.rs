//! Process/node identifiers and the cluster topology (rank ↔ node mapping).

use std::fmt;
use std::ops::Range;

/// Global rank of a user process, `0..nprocs`.
///
/// ARMCI addresses remote memory with a `(process id, address)` tuple; the
/// process id half of that tuple is a `ProcId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

/// Identifier of a (simulated) SMP node, `0..nodes`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl ProcId {
    /// Rank as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// Node number as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Shape of the emulated cluster: how many nodes, and how ranks are laid
/// out across them.
///
/// Ranks are block-distributed: ranks `[n*ppn, (n+1)*ppn)` live on node
/// `n`, mirroring how MPI typically lays out ranks on an SMP cluster (and
/// how the paper's dual-CPU nodes hosted two processes each).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    nodes: u32,
    procs_per_node: u32,
}

impl Topology {
    /// Create a topology of `nodes` nodes with `procs_per_node` user
    /// processes each.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(nodes: u32, procs_per_node: u32) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(procs_per_node > 0, "topology needs at least one process per node");
        Topology { nodes, procs_per_node }
    }

    /// Total number of user processes.
    #[inline]
    pub fn nprocs(&self) -> usize {
        (self.nodes * self.procs_per_node) as usize
    }

    /// Number of nodes.
    #[inline]
    pub fn nnodes(&self) -> usize {
        self.nodes as usize
    }

    /// Processes hosted per node.
    #[inline]
    pub fn procs_per_node(&self) -> usize {
        self.procs_per_node as usize
    }

    /// Node hosting process `p`.
    #[inline]
    pub fn node_of(&self, p: ProcId) -> NodeId {
        debug_assert!(p.idx() < self.nprocs());
        NodeId(p.0 / self.procs_per_node)
    }

    /// Ranks hosted on node `n` (a contiguous range).
    #[inline]
    pub fn procs_on(&self, n: NodeId) -> Range<u32> {
        debug_assert!(n.idx() < self.nnodes());
        let lo = n.0 * self.procs_per_node;
        lo..lo + self.procs_per_node
    }

    /// Whether two processes share a node (and hence shared memory).
    #[inline]
    pub fn same_node(&self, a: ProcId, b: ProcId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterate over all process ids.
    pub fn all_procs(&self) -> impl Iterator<Item = ProcId> {
        (0..self.nprocs() as u32).map(ProcId)
    }

    /// Iterate over all node ids.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let t = Topology::new(4, 2);
        assert_eq!(t.nprocs(), 8);
        assert_eq!(t.node_of(ProcId(0)), NodeId(0));
        assert_eq!(t.node_of(ProcId(1)), NodeId(0));
        assert_eq!(t.node_of(ProcId(2)), NodeId(1));
        assert_eq!(t.node_of(ProcId(7)), NodeId(3));
    }

    #[test]
    fn procs_on_node_are_contiguous() {
        let t = Topology::new(3, 4);
        assert_eq!(t.procs_on(NodeId(0)), 0..4);
        assert_eq!(t.procs_on(NodeId(2)), 8..12);
    }

    #[test]
    fn same_node_detection() {
        let t = Topology::new(2, 2);
        assert!(t.same_node(ProcId(0), ProcId(1)));
        assert!(!t.same_node(ProcId(1), ProcId(2)));
        assert!(t.same_node(ProcId(3), ProcId(3)));
    }

    #[test]
    fn single_proc_per_node() {
        let t = Topology::new(16, 1);
        for p in t.all_procs() {
            assert_eq!(t.node_of(p).0, p.0);
        }
        assert_eq!(t.all_nodes().count(), 16);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        Topology::new(0, 1);
    }

    #[test]
    #[should_panic]
    fn zero_ppn_rejected() {
        Topology::new(1, 0);
    }
}
