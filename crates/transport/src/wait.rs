//! Blocking-wait helpers tuned for heavy thread oversubscription.
//!
//! The emulator routinely runs 16–32 simulated processes plus server
//! threads on machines with far fewer cores, so *every* wait in the stack
//! must release the CPU: a pure `spin_loop()` poll would serialize the
//! whole cluster behind the scheduler tick. The helpers here spin briefly
//! (to catch the common fast path), then yield, then sleep for long waits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many iterations to busy-spin before starting to yield.
const SPIN_ITERS: u32 = 64;
/// Sleep (rather than yield) when more than this much time remains.
const SLEEP_SLACK: Duration = Duration::from_micros(200);

/// Block until `deadline`, sleeping for the bulk of the wait and yielding
/// for the final stretch so the wake-up is reasonably precise without
/// burning a core.
pub fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SLEEP_SLACK {
            std::thread::sleep(remaining - SLEEP_SLACK);
        } else {
            std::thread::yield_now();
        }
    }
}

/// Spin-then-yield until `cond` returns true.
///
/// This is the waiting discipline for the polling loops the paper's
/// algorithms prescribe (ticket-lock `counter` polls, MCS `locked` flag
/// polls, the `op_done` wait in `ARMCI_Barrier`). On a real cluster those
/// are pure spins on cache-resident locations; here we must yield so that
/// the thread actually holding the resource can run.
#[inline]
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut iters = 0u32;
    while !cond() {
        if iters < SPIN_ITERS {
            std::hint::spin_loop();
            iters += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// Spin-then-yield until `cond` returns true or `deadline` passes.
///
/// Returns `true` if the condition was observed, `false` on timeout. This
/// is the bounded form of [`spin_until`] used by the fault-aware waits:
/// callers alternate short bounded spins with peer-liveness checks so a
/// dead peer turns a forever-spin into an error.
#[inline]
pub fn spin_until_deadline(mut cond: impl FnMut() -> bool, deadline: Instant) -> bool {
    let mut iters = 0u32;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        if iters < SPIN_ITERS {
            std::hint::spin_loop();
            iters += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// Spin-then-yield until the atomic equals `want` (Acquire load).
#[inline]
pub fn spin_until_eq(word: &AtomicU64, want: u64) {
    spin_until(|| word.load(Ordering::Acquire) == want)
}

/// Spin-then-yield until the atomic is at least `want` (Acquire load).
#[inline]
pub fn spin_until_ge(word: &AtomicU64, want: u64) {
    spin_until(|| word.load(Ordering::Acquire) >= want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn wait_until_past_deadline_returns_immediately() {
        let t0 = Instant::now();
        wait_until(t0); // already passed
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn wait_until_waits_at_least_the_duration() {
        let d = Duration::from_millis(5);
        let t0 = Instant::now();
        wait_until(t0 + d);
        assert!(t0.elapsed() >= d);
    }

    #[test]
    fn spin_until_sees_flag_from_other_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            f2.store(true, Ordering::Release);
        });
        spin_until(|| flag.load(Ordering::Acquire));
        h.join().unwrap();
    }

    #[test]
    fn spin_until_deadline_times_out_and_succeeds() {
        let t0 = Instant::now();
        assert!(!spin_until_deadline(|| false, t0 + Duration::from_millis(3)));
        assert!(t0.elapsed() >= Duration::from_millis(3));
        // A condition that is already true wins even with a past deadline.
        assert!(spin_until_deadline(|| true, t0));
    }

    #[test]
    fn spin_until_eq_and_ge() {
        let w = Arc::new(AtomicU64::new(0));
        let w2 = w.clone();
        let h = std::thread::spawn(move || {
            for i in 1..=5 {
                std::thread::sleep(Duration::from_millis(1));
                w2.store(i, Ordering::Release);
            }
        });
        spin_until_ge(&w, 3);
        assert!(w.load(Ordering::Acquire) >= 3);
        spin_until_eq(&w, 5);
        h.join().unwrap();
    }
}
