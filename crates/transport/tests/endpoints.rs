//! Transport-level integration tests: multi-endpoint messaging (procs,
//! servers, NICs), tracing with latency, and topology properties.

use armci_transport::{Cluster, Endpoint, LatencyModel, NodeId, ProcId, Tag, Topology};
use proptest::prelude::*;
use std::time::Duration;

#[test]
fn nic_endpoints_are_wired_and_addressable() {
    let mut c = Cluster::builder().nodes(2).procs_per_node(1).latency(LatencyModel::zero()).build();
    let mut p0 = c.take_proc(ProcId(0));
    let mut nic1 = c.take_nic(NodeId(1));
    let nic_thread = std::thread::spawn(move || {
        let m = nic1.recv().unwrap();
        assert_eq!(m.src, Endpoint::Proc(ProcId(0)));
        nic1.send(m.src, Tag(Tag::INTERNAL_BASE + 1), vec![m.body[0] * 2]);
    });
    p0.send(Endpoint::Nic(NodeId(1)), Tag(Tag::INTERNAL_BASE), vec![21]);
    let reply = p0.recv().unwrap();
    assert_eq!(reply.src, Endpoint::Nic(NodeId(1)));
    assert_eq!(reply.body, vec![42]);
    nic_thread.join().unwrap();
}

#[test]
fn server_and_nic_queues_are_independent() {
    let mut c = Cluster::builder().nodes(2).procs_per_node(1).latency(LatencyModel::zero()).build();
    let mut p0 = c.take_proc(ProcId(0));
    let mut srv = c.take_server(NodeId(1));
    let mut nic = c.take_nic(NodeId(1));
    // Interleave sends to both agents of node 1; each sees only its own.
    for i in 0..6u8 {
        let (ep, tag) =
            if i % 2 == 0 { (Endpoint::Server(NodeId(1)), Tag(1)) } else { (Endpoint::Nic(NodeId(1)), Tag(2)) };
        p0.send(ep, tag, vec![i]);
    }
    for want in [0u8, 2, 4] {
        assert_eq!(srv.recv().unwrap().body, vec![want]);
    }
    for want in [1u8, 3, 5] {
        assert_eq!(nic.recv().unwrap().body, vec![want]);
    }
}

#[test]
fn trace_includes_latency_annotated_sends() {
    let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(2));
    let mut c = Cluster::builder().nodes(2).procs_per_node(1).latency(lat).trace(true).build();
    let trace = c.trace().unwrap();
    let mut p0 = c.take_proc(ProcId(0));
    let mut p1 = c.take_proc(ProcId(1));
    p0.send(Endpoint::Proc(ProcId(1)), Tag(7), vec![0; 100]);
    let _ = p1.recv().unwrap();
    let snap = trace.snapshot();
    assert_eq!(snap.len(), 1);
    assert_eq!(snap[0].size, 100);
    assert_eq!(snap[0].tag, Tag(7));
    assert_eq!(snap[0].src, Endpoint::Proc(ProcId(0)));
}

#[test]
fn jitter_reorders_across_channels_but_not_within() {
    // With heavy jitter, messages from two senders interleave in receive
    // order, but each sender's own stream stays FIFO.
    let lat = LatencyModel::zero().with_inter_node(Duration::from_micros(100)).with_jitter(Duration::from_millis(2));
    let mut c = Cluster::builder().nodes(3).procs_per_node(1).latency(lat).seed(3).build();
    let mut p0 = c.take_proc(ProcId(0));
    let mut p1 = c.take_proc(ProcId(1));
    let mut p2 = c.take_proc(ProcId(2));
    let h1 = std::thread::spawn(move || {
        for i in 0..20u8 {
            p1.send(Endpoint::Proc(ProcId(0)), Tag(1), vec![i]);
        }
    });
    let h2 = std::thread::spawn(move || {
        for i in 0..20u8 {
            p2.send(Endpoint::Proc(ProcId(0)), Tag(2), vec![i]);
        }
    });
    h1.join().unwrap();
    h2.join().unwrap();
    let mut last_from_1 = None;
    let mut last_from_2 = None;
    for _ in 0..40 {
        let m = p0.recv().unwrap();
        let last = if m.tag == Tag(1) { &mut last_from_1 } else { &mut last_from_2 };
        if let Some(prev) = *last {
            assert!(m.body[0] > prev, "per-channel FIFO violated");
        }
        *last = Some(m.body[0]);
    }
    assert_eq!(last_from_1, Some(19));
    assert_eq!(last_from_2, Some(19));
}

#[test]
fn recv_timeout_expires_then_delivers() {
    let mut c = Cluster::builder().nodes(2).procs_per_node(1).latency(LatencyModel::zero()).build();
    let mut p0 = c.take_proc(ProcId(0));
    let mut p1 = c.take_proc(ProcId(1));
    // Nothing in flight: the deadline passes and recv_timeout reports so.
    assert!(p0.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
    // With a message in flight it is delivered well before a long deadline.
    p1.send(Endpoint::Proc(ProcId(0)), Tag(3), vec![9]);
    let m = p0.recv_timeout(Duration::from_secs(5)).unwrap().expect("message should arrive");
    assert_eq!(m.tag, Tag(3));
    assert_eq!(m.body, vec![9]);
}

#[test]
fn recv_deadline_respects_latency_stamps() {
    // A message whose modeled delivery time lies beyond the deadline is
    // not delivered early: the emulator waits out the deadline and
    // returns None, then a later recv gets it.
    let lat = LatencyModel::zero().with_inter_node(Duration::from_millis(50));
    let mut c = Cluster::builder().nodes(2).procs_per_node(1).latency(lat).build();
    let mut p0 = c.take_proc(ProcId(0));
    let mut p1 = c.take_proc(ProcId(1));
    p1.send(Endpoint::Proc(ProcId(0)), Tag(4), vec![1]);
    let early = std::time::Instant::now() + Duration::from_millis(5);
    assert!(p0.recv_deadline(early).unwrap().is_none());
    let m = p0.recv().unwrap();
    assert_eq!(m.tag, Tag(4));
}

#[test]
fn recv_timeout_drains_deferred_before_waiting() {
    let mut c = Cluster::builder().nodes(2).procs_per_node(1).latency(LatencyModel::zero()).build();
    let mut p0 = c.take_proc(ProcId(0));
    let mut p1 = c.take_proc(ProcId(1));
    // recv_tag defers the Tag(1) message while fishing for Tag(2)...
    p1.send(Endpoint::Proc(ProcId(0)), Tag(1), vec![1]);
    p1.send(Endpoint::Proc(ProcId(0)), Tag(2), vec![2]);
    assert_eq!(p0.recv_tag(Tag(2)).unwrap().body, vec![2]);
    // ...so a timed receive must yield the deferred message immediately,
    // even with a zero timeout.
    let m = p0.recv_timeout(Duration::ZERO).unwrap().expect("deferred message");
    assert_eq!(m.tag, Tag(1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topology_node_of_is_block_partition(nodes in 1u32..40, ppn in 1u32..8) {
        let t = Topology::new(nodes, ppn);
        let mut counts = vec![0usize; t.nnodes()];
        for p in t.all_procs() {
            counts[t.node_of(p).idx()] += 1;
            prop_assert!(t.procs_on(t.node_of(p)).contains(&p.0));
        }
        prop_assert!(counts.iter().all(|&c| c == ppn as usize));
    }

    #[test]
    fn same_node_is_equivalence_relation(nodes in 1u32..10, ppn in 1u32..5,
                                         a in 0u32..50, b in 0u32..50, c in 0u32..50) {
        let t = Topology::new(nodes, ppn);
        let n = t.nprocs() as u32;
        let (a, b, c) = (ProcId(a % n), ProcId(b % n), ProcId(c % n));
        prop_assert!(t.same_node(a, a));
        prop_assert_eq!(t.same_node(a, b), t.same_node(b, a));
        if t.same_node(a, b) && t.same_node(b, c) {
            prop_assert!(t.same_node(a, c));
        }
    }
}
