#![warn(missing_docs)]
//! # armci-repro — reproduction of *Optimizing Synchronization Operations
//! for Remote Memory Communication Systems* (IPPS 2003)
//!
//! This root crate re-exports the workspace so examples and cross-crate
//! integration tests have one import surface:
//!
//! * [`armci_core`] — the ARMCI library itself (put/get/accumulate/RMW,
//!   fence/allfence, the paper's combined `ARMCI_Barrier()`, hybrid and
//!   MCS locks);
//! * [`armci_transport`] — the emulated cluster (nodes, server threads,
//!   latency-stamped channels, shared segments);
//! * [`armci_msglib`] — the MPI stand-in (barriers, allreduce, bcast);
//! * [`armci_ga`] — Global-Arrays-style distributed 2-D arrays;
//! * [`armci_simnet`] — the deterministic discrete-event model plane.
//!
//! See `README.md` for a tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction inventory and results.

pub use armci_core;
pub use armci_ga;
pub use armci_mpi2win;
pub use armci_msglib;
pub use armci_shmem;
pub use armci_simnet;
pub use armci_transport;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use armci_core::ProcGroup;
    pub use armci_core::{run_cluster, AckMode, Armci, ArmciCfg, GlobalAddr, LockAlgo, LockId, RmwOp, Strided2D};
    pub use armci_ga::{GlobalArray, Patch, SharedCounters, SyncAlg};
    pub use armci_msglib::Group;
    pub use armci_transport::{LatencyModel, NodeId, ProcId, SegId};
}
