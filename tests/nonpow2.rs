//! Non-power-of-two process counts through every collective that embeds a
//! binary-exchange schedule: `allreduce`, `barrier_binary_exchange`, and
//! the combined `ARMCI_Barrier()`. The exchange runs on the largest
//! power-of-two subgroup with fold-in/fold-out steps for the excess
//! ranks, so N = 3, 5, 6 cover excess-of-one, excess-of-one-over-4, and
//! excess-of-two — over both the threaded emulator and real loopback TCP.

use armci_repro::prelude::*;

/// One body exercising all three collectives; returns per-rank evidence.
fn workload(a: &mut Armci) -> (u64, u64) {
    let n = a.nprocs();

    // allreduce: every rank contributes rank+1 twice; all must agree.
    let mut v = vec![a.rank() as u64 + 1, (a.rank() as u64 + 1) * 10];
    Group::world(n).allreduce_sum_u64(a, &mut v);
    assert_eq!(v[1], v[0] * 10);

    // barrier_binary_exchange: pure barrier between two put phases — no
    // rank may read phase-2 data before everyone finished phase 1.
    let seg = a.malloc(8 * n);
    a.put_u64(GlobalAddr::new(ProcId(((a.rank() + 1) % n) as u32), seg, 8 * a.rank()), 1);
    a.fence(ProcId(((a.rank() + 1) % n) as u32));
    Group::world(n).barrier_binary_exchange(a);
    let seen: u64 = {
        let mine = a.local_segment(seg);
        (0..n).map(|r| mine.read_u64(8 * r)).sum()
    };
    assert_eq!(seen, 1, "exactly my predecessor wrote into my segment before the barrier");

    // ARMCI_Barrier: the combined fence+allreduce+exchange operation,
    // completing outstanding counted puts from every rank. A fresh
    // segment so these puts cannot race rank 0's read of `seg` above.
    let seg2 = a.malloc(8 * n);
    a.put_u64(GlobalAddr::new(ProcId(0), seg2, 8 * a.rank()), a.rank() as u64 + 1);
    a.barrier();
    let total: u64 = if a.rank() == 0 {
        let mine = a.local_segment(seg2);
        (0..n).map(|r| mine.read_u64(8 * r)).sum()
    } else {
        0
    };
    a.barrier();
    (v[0], total)
}

fn expected_sum(n: usize) -> u64 {
    (n as u64) * (n as u64 + 1) / 2
}

#[test]
fn nonpow2_collectives_on_emulator() {
    for n in [3u32, 5, 6] {
        let out = armci_repro::armci_core::run_cluster(ArmciCfg::flat(n, LatencyModel::zero()), workload);
        for (rank, (sum, total)) in out.into_iter().enumerate() {
            assert_eq!(sum, expected_sum(n as usize), "allreduce n={n} rank={rank}");
            if rank == 0 {
                assert_eq!(total, expected_sum(n as usize), "ARMCI_Barrier n={n}");
            }
        }
    }
}

#[test]
fn nonpow2_collectives_on_netfab_loopback() {
    for n in [3u32, 5, 6] {
        let out = armci_repro::armci_core::run_cluster_net_loopback(ArmciCfg::flat(n, LatencyModel::zero()), workload);
        for (rank, (sum, total)) in out.into_iter().enumerate() {
            assert_eq!(sum, expected_sum(n as usize), "allreduce n={n} rank={rank}");
            if rank == 0 {
                assert_eq!(total, expected_sum(n as usize), "ARMCI_Barrier n={n}");
            }
        }
    }
}

#[test]
fn nonpow2_collectives_under_jitter() {
    // Reordered deliveries must not confuse the fold-in/fold-out steps.
    for (n, seed) in [(3u32, 3u64), (5, 13), (6, 29)] {
        let lat = LatencyModel::zero()
            .with_inter_node(std::time::Duration::from_micros(10))
            .with_jitter(std::time::Duration::from_micros(100));
        let cfg = ArmciCfg { nodes: n, procs_per_node: 1, latency: lat, seed, ..Default::default() };
        let out = armci_repro::armci_core::run_cluster(cfg, workload);
        for (sum, _) in out {
            assert_eq!(sum, expected_sum(n as usize), "n={n} seed={seed}");
        }
    }
}
