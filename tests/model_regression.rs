//! Model-plane regression: the headline winners of the paper's figures,
//! pinned on the deterministic simulator so any change to the shared
//! protocol engines or the cost model that flips a conclusion fails CI.

use armci_repro::armci_simnet::protocols::lock::{simulate_lock, simulate_lock_single_avg, LockAlgo};
use armci_repro::armci_simnet::protocols::sync::{simulate_combined_barrier, simulate_sync_baseline};
use armci_repro::armci_simnet::NetModel;

/// Figure 7's conclusion: the combined `ARMCI_Barrier()` beats the
/// baseline fence+barrier `GA_Sync()` at every measured scale, and by a
/// widening factor.
#[test]
fn fig7_combined_barrier_beats_baseline() {
    let net = NetModel::myrinet_2000();
    let mut last_factor = 0.0;
    for n in [2usize, 4, 8, 16] {
        let base = simulate_sync_baseline(n, n - 1, net).mean();
        let comb = simulate_combined_barrier(n, net).mean();
        assert!(comb < base, "fig7 winner flipped at n={n}: combined {comb} !< baseline {base}");
        let factor = base / comb;
        assert!(factor > last_factor, "fig7 improvement must widen with n: {factor} at n={n}");
        last_factor = factor;
    }
    assert!(last_factor > 4.0, "fig7 factor at n=16 should exceed the pure-latency prediction: {last_factor}");
}

/// Figure 8's conclusion: under contention the MCS queuing lock's full
/// cycle beats the hybrid server lock.
#[test]
fn fig8_mcs_cycle_beats_hybrid_under_contention() {
    let net = NetModel::myrinet_2000();
    for n in [2usize, 4, 8, 16] {
        let mcs = simulate_lock(LockAlgo::Mcs, n, 200, 0, net);
        let hyb = simulate_lock(LockAlgo::Hybrid, n, 200, 0, net);
        assert!(mcs.cycle_ns < hyb.cycle_ns, "fig8 winner flipped at n={n}: {} !< {}", mcs.cycle_ns, hyb.cycle_ns);
    }
}

/// Figure 9/10's conclusions: MCS acquires faster under contention but
/// pays the uncontended CAS round trip on release.
#[test]
fn fig9_fig10_acquire_and_release_shapes() {
    let net = NetModel::myrinet_2000();
    for n in [4usize, 16] {
        let mcs = simulate_lock(LockAlgo::Mcs, n, 200, 0, net);
        let hyb = simulate_lock(LockAlgo::Hybrid, n, 200, 0, net);
        assert!(mcs.acquire_ns < hyb.acquire_ns, "fig9 flipped at n={n}");
    }
    let mcs1 = simulate_lock_single_avg(LockAlgo::Mcs, 200, 0, net);
    let hyb1 = simulate_lock_single_avg(LockAlgo::Hybrid, 200, 0, net);
    assert!(mcs1.release_ns > hyb1.release_ns, "fig10 regression gone: uncontended MCS release should cost a CAS RTT");
}
