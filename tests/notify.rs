//! Cross-harness conformance for notified RMA (`put_notify` /
//! `wait_notify`): the same sans-IO [`armci_proto::NotifyEngine`] is
//! driven by the threaded emulator runtime, the netfab TCP loopback
//! runtime, and the discrete-event simulator. For one destination
//! schedule the three harnesses must emit *identical* `(to, slot, seq)`
//! notification traces — the model plane provably simulates the
//! notification protocol the runtime executes — and the planned
//! ghost-cell exchange must beat the baseline `op_init`-exchange sync on
//! wire messages, the structural claim of the notified-RMA design.

use armci_proto::NotifyRecord;
use armci_repro::prelude::*;

/// Drive `iters` rounds of a notified exchange on the runtime: each
/// rank `put_notify`s one word to every rank in its `dests` row (slot
/// 0), then waits for the cumulative notification count from its
/// producers — exactly the schedule the simulator's `NotifyProc` actor
/// runs. Returns every rank's engine send trace.
fn runtime_notify_logs(dests: &'static [&'static [usize]], iters: u64, net: bool) -> Vec<Vec<NotifyRecord>> {
    let n = dests.len();
    let cfg = ArmciCfg::flat(n as u32, LatencyModel::zero());
    let body = move |a: &mut Armci| {
        let seg = a.malloc(8 * a.nprocs());
        let me = a.rank();
        let expected = dests.iter().filter(|row| row.contains(&me)).count() as u64;
        for i in 0..iters {
            for &d in dests[me] {
                let word = ((me as u64) << 32) | i;
                a.put_notify(GlobalAddr::new(ProcId(d as u32), seg, 8 * me), &word.to_le_bytes(), 0);
            }
            if expected > 0 {
                a.wait_notify(0, (i + 1) * expected);
            }
        }
        a.barrier();
        a.take_notify_log()
    };
    if net {
        armci_repro::armci_core::run_cluster_net_loopback(cfg, body)
    } else {
        armci_repro::armci_core::run_cluster(cfg, body)
    }
}

/// The simulator's per-rank notify traces for the same schedule.
fn simnet_notify_logs(dests: &[&[usize]], iters: u64) -> Vec<Vec<NotifyRecord>> {
    let owned: Vec<Vec<usize>> = dests.iter().map(|row| row.to_vec()).collect();
    armci_repro::armci_simnet::protocols::sync::simulate_notify_exchange_logged(
        &owned,
        8,
        iters,
        armci_repro::armci_simnet::NetModel::myrinet_2000(),
    )
    .1
}

/// Ring (every rank notifies both neighbours), including a
/// non-power-of-two world: runtime-driven and simulator-driven engines
/// must produce identical traces.
#[test]
fn notify_ring_trace_identical_emulator_vs_simnet() {
    static RING4: [&[usize]; 4] = [&[1, 3], &[2, 0], &[3, 1], &[0, 2]];
    static RING5: [&[usize]; 5] = [&[1, 4], &[2, 0], &[3, 1], &[4, 2], &[0, 3]];
    for dests in [&RING4[..], &RING5[..]] {
        let emu = runtime_notify_logs(dests, 3, false);
        let sim = simnet_notify_logs(dests, 3);
        assert_eq!(emu.len(), dests.len());
        for rank in 0..dests.len() {
            assert_eq!(
                emu[rank],
                sim[rank],
                "n={} rank={rank}: runtime and simulator notify engines diverged",
                dests.len()
            );
        }
        // Not vacuous: every rank notifies two neighbours per iteration.
        assert!(emu.iter().all(|l| l.len() == 6), "expected 2 sends x 3 iterations per rank");
    }
}

/// An asymmetric schedule with a pure consumer (rank 2 sends nothing)
/// and a pure producer chain; consumer logs must be empty and producer
/// sequence numbers cumulative per destination.
#[test]
fn notify_asymmetric_trace_identical_emulator_vs_simnet() {
    static DESTS: [&[usize]; 3] = [&[1, 2], &[2], &[]];
    let emu = runtime_notify_logs(&DESTS, 2, false);
    let sim = simnet_notify_logs(&DESTS, 2);
    assert_eq!(emu, sim, "runtime and simulator notify engines diverged");
    assert!(emu[2].is_empty(), "a pure consumer never sends a notification");
    assert_eq!(
        emu[0],
        vec![
            NotifyRecord { to: 1, slot: 0, seq: 1 },
            NotifyRecord { to: 2, slot: 0, seq: 1 },
            NotifyRecord { to: 1, slot: 0, seq: 2 },
            NotifyRecord { to: 2, slot: 0, seq: 2 },
        ],
        "per-destination sequence numbers must be cumulative"
    );
}

#[test]
fn notify_trace_identical_netfab_vs_simnet() {
    static RING3: [&[usize]; 3] = [&[1, 2], &[2, 0], &[0, 1]];
    let net = runtime_notify_logs(&RING3, 2, true);
    let sim = simnet_notify_logs(&RING3, 2);
    for rank in 0..3 {
        assert_eq!(net[rank], sim[rank], "rank={rank}: netfab and simulator notify engines diverged");
    }
}

/// Group-scoped notified exchange: only a 3-of-6 subset participates
/// (the others are idle), so the active destination rows name a strict
/// subgroup. The runtime traces must match a simulator world of the
/// same size whose non-members simply have no destinations.
#[test]
fn group_scoped_notify_trace_identical_emulator_vs_simnet() {
    static DESTS: [&[usize]; 6] = [&[], &[3, 4], &[], &[4, 1], &[1, 3], &[]];
    let emu = runtime_notify_logs(&DESTS, 2, false);
    let sim = simnet_notify_logs(&DESTS, 2);
    for rank in 0..DESTS.len() {
        assert_eq!(emu[rank], sim[rank], "rank={rank}: group-scoped notify engines diverged");
    }
    for idle in [0usize, 2, 5] {
        assert!(emu[idle].is_empty(), "idle rank {idle} must not notify");
    }
}

// ---- Ghost-exchange wire-count gate ---------------------------------

/// The acceptance gate for [`SyncAlg::Notify`]: per ghost-exchange step,
/// the planned notified push (data puts carrying their own notification)
/// must put strictly fewer messages on the wire than the pull update
/// synchronized by the combined barrier — whose every step pays the
/// `op_init` allreduce + binary exchange *in addition to* the data
/// movement.
#[test]
fn ghost_notify_sync_beats_op_init_exchange_on_the_wire() {
    const STEPS: u64 = 4;
    let out = run_cluster(ArmciCfg::flat(4, LatencyModel::zero()), |a| {
        let ga = armci_repro::armci_ga::GlobalArray::create(a, 8, 8);
        let own = ga.owned_patch(a.rank());
        ga.put(a, own, &vec![a.rank() as f64; own.len()]);
        let mut g = armci_repro::armci_ga::GhostArray::new(a, ga, 1);
        let mut plan = g.plan_update(a, 0);
        a.barrier();

        let before = a.stats().wire_msgs;
        for _ in 0..STEPS {
            g.update_with_plan(a, &mut plan);
        }
        let notify_wire = a.stats().wire_msgs - before;

        a.barrier();
        let before = a.stats().wire_msgs;
        for _ in 0..STEPS {
            g.update(a); // pull + GA_Sync (op_init exchange + barrier)
        }
        let baseline_wire = a.stats().wire_msgs - before;
        a.barrier();
        (notify_wire, baseline_wire, plan.batches_per_iter() as u64, plan.expected_per_iter())
    });
    for (rank, &(notify, baseline, batches, expected)) in out.iter().enumerate() {
        assert!(notify > 0, "rank {rank}: a flat 4-rank world must push ghosts over the wire");
        assert!(
            notify < baseline,
            "rank {rank}: notified sync ({notify} wire msgs / {STEPS} steps) must beat \
             the op_init exchange baseline ({baseline})"
        );
        // The notified path is *only* the batched data puts: at most one
        // wire message per batch per step, and nothing else.
        assert!(notify <= STEPS * batches, "rank {rank}: notify path sent non-batch messages");
        assert!(expected > 0, "rank {rank}: every rank has ghost producers on a 2x2 grid");
    }
}
