//! Conformance matrix: the same semantic checks swept across topologies,
//! acknowledgement modes, and lock algorithms — the configurations a
//! downstream user could actually pick.

use armci_repro::prelude::*;

fn topologies() -> Vec<(u32, u32)> {
    // (nodes, procs_per_node): flat, SMP, single-node multi-proc, single.
    vec![(1, 1), (1, 4), (4, 1), (2, 2), (3, 2)]
}

/// Put-to-everyone, combined barrier, verify everyone sees everything.
fn check_global_visibility(cfg: ArmciCfg) {
    let out = armci_repro::armci_core::run_cluster(cfg, |a| {
        let n = a.nprocs();
        let seg = a.malloc(8 * n);
        for r in 0..n {
            a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 7000 + a.rank() as u64);
        }
        a.barrier();
        let mine = a.local_segment(seg);
        (0..n).all(|r| mine.read_u64(8 * r) == 7000 + r as u64)
    });
    assert!(out.into_iter().all(|ok| ok));
}

/// Locked non-atomic increments, verify no lost updates.
fn check_lock_exclusion(cfg: ArmciCfg) {
    let nprocs = (cfg.nodes * cfg.procs_per_node) as u64;
    let out = armci_repro::armci_core::run_cluster(cfg, move |a| {
        let seg = a.malloc(8);
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let ctr = GlobalAddr::new(ProcId(0), seg, 0);
        a.barrier();
        for _ in 0..8 {
            a.lock(lock);
            let mut b = [0u8; 8];
            a.get(ctr, &mut b);
            a.put(ctr, &(u64::from_le_bytes(b) + 1).to_le_bytes());
            a.fence(ProcId(0));
            a.unlock(lock);
        }
        a.barrier();
        let mut b = [0u8; 8];
        a.get(ctr, &mut b);
        u64::from_le_bytes(b)
    });
    for v in out {
        assert_eq!(v, nprocs * 8);
    }
}

#[test]
fn visibility_matrix_ack_modes_x_topologies() {
    for (nodes, ppn) in topologies() {
        for ack in [AckMode::Gm, AckMode::Via] {
            let cfg = ArmciCfg {
                nodes,
                procs_per_node: ppn,
                latency: LatencyModel::zero(),
                ack_mode: ack,
                ..Default::default()
            };
            check_global_visibility(cfg);
        }
    }
}

#[test]
fn lock_matrix_algos_x_topologies() {
    for (nodes, ppn) in topologies() {
        for algo in [LockAlgo::Hybrid, LockAlgo::TicketPoll, LockAlgo::Mcs, LockAlgo::McsPair, LockAlgo::McsSwap] {
            let cfg = ArmciCfg {
                nodes,
                procs_per_node: ppn,
                latency: LatencyModel::zero(),
                lock_algo: algo,
                ..Default::default()
            };
            check_lock_exclusion(cfg);
        }
    }
}

#[test]
fn sync_algorithms_equivalent_across_matrix() {
    use armci_repro::armci_ga::{GlobalArray, SyncAlg};
    for (nodes, ppn) in [(4u32, 1u32), (2, 2)] {
        for alg in [SyncAlg::Baseline, SyncAlg::CombinedBarrier] {
            let cfg = ArmciCfg { nodes, procs_per_node: ppn, latency: LatencyModel::zero(), ..Default::default() };
            let out = armci_repro::armci_core::run_cluster(cfg, move |a| {
                let ga = GlobalArray::create(a, 8, 8);
                let target = (a.rank() + 1) % a.nprocs();
                let p = ga.owned_patch(target);
                ga.put(a, p, &vec![5.5; p.len()]);
                ga.sync_world(a, alg);
                ga.local_block(a).iter().all(|&v| v == 5.5)
            });
            assert!(out.into_iter().all(|ok| ok), "nodes={nodes} ppn={ppn} alg={alg:?}");
        }
    }
}
