//! Interval-based mutual-exclusion verification: because every simulated
//! process is a thread in one OS process, `Instant` timestamps are
//! globally comparable — so we can record each critical section's
//! [enter, exit] interval and assert that no two critical sections of the
//! same lock ever overlap, for every lock algorithm. A stronger check
//! than counter torture: it catches *any* exclusion violation, not just
//! ones that corrupt a counter.

use armci_repro::prelude::*;
use std::time::Instant;

fn record_intervals(algo: LockAlgo, nodes: u32, ppn: u32, iters: usize) -> Vec<Vec<(u128, u128)>> {
    let cfg =
        ArmciCfg { nodes, procs_per_node: ppn, latency: LatencyModel::zero(), lock_algo: algo, ..Default::default() };
    let t0 = Instant::now();
    armci_repro::armci_core::run_cluster(cfg, move |a| {
        let lock = LockId { owner: ProcId(0), idx: 0 };
        a.barrier();
        let mut intervals = Vec::with_capacity(iters);
        for i in 0..iters {
            a.lock(lock);
            let enter = t0.elapsed().as_nanos();
            // A little work inside, so intervals have width.
            std::hint::black_box((0..50).sum::<u64>());
            if i % 3 == 0 {
                std::thread::yield_now(); // invite preemption inside the CS
            }
            let exit = t0.elapsed().as_nanos();
            a.unlock(lock);
            intervals.push((enter, exit));
        }
        a.barrier();
        intervals
    })
}

fn assert_disjoint(all: Vec<Vec<(u128, u128)>>, algo: LockAlgo) {
    let mut flat: Vec<(u128, u128, usize)> = Vec::new();
    for (rank, v) in all.into_iter().enumerate() {
        for (s, e) in v {
            assert!(s <= e, "clock went backwards");
            flat.push((s, e, rank));
        }
    }
    flat.sort_unstable();
    for w in flat.windows(2) {
        let (_, e1, r1) = w[0];
        let (s2, _, r2) = w[1];
        assert!(
            e1 <= s2,
            "{algo:?}: critical sections overlap: rank {r1} exited at {e1} after rank {r2} entered at {s2}"
        );
    }
}

#[test]
fn intervals_disjoint_hybrid() {
    assert_disjoint(record_intervals(LockAlgo::Hybrid, 4, 1, 40), LockAlgo::Hybrid);
}

#[test]
fn intervals_disjoint_server_only() {
    assert_disjoint(record_intervals(LockAlgo::ServerOnly, 4, 1, 40), LockAlgo::ServerOnly);
}

#[test]
fn intervals_disjoint_ticket_poll() {
    assert_disjoint(record_intervals(LockAlgo::TicketPoll, 4, 1, 25), LockAlgo::TicketPoll);
}

#[test]
fn intervals_disjoint_mcs() {
    assert_disjoint(record_intervals(LockAlgo::Mcs, 4, 1, 40), LockAlgo::Mcs);
}

#[test]
fn intervals_disjoint_mcs_pair() {
    assert_disjoint(record_intervals(LockAlgo::McsPair, 4, 1, 40), LockAlgo::McsPair);
}

#[test]
fn intervals_disjoint_mcs_swap() {
    assert_disjoint(record_intervals(LockAlgo::McsSwap, 4, 1, 40), LockAlgo::McsSwap);
}

#[test]
fn intervals_disjoint_smp_mixed() {
    for algo in [LockAlgo::Hybrid, LockAlgo::Mcs, LockAlgo::McsSwap] {
        assert_disjoint(record_intervals(algo, 2, 3, 25), algo);
    }
}
