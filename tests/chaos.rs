//! Chaos test: a long randomized mixed workload — puts, strided puts,
//! gets, accumulates, RMWs, locks, fences and barriers interleaved on
//! every rank with per-rank deterministic RNG — checking global
//! invariants at every barrier. Shakes out interleavings no directed
//! test thinks of.

use armci_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One rank's slice of the chaos: operate on scratch space, maintain a
/// locked shared counter and a per-rank accumulate tally, barrier
/// periodically and verify.
fn chaos_run(seed: u64, nodes: u32, ppn: u32, algo: LockAlgo, rounds: usize) {
    let nprocs = (nodes * ppn) as u64;
    let cfg = ArmciCfg {
        nodes,
        procs_per_node: ppn,
        latency: LatencyModel::zero(),
        lock_algo: algo,
        seed,
        ..Default::default()
    };
    let out = armci_repro::armci_core::run_cluster(cfg, move |a| {
        let n = a.nprocs();
        // Layout per rank's segment: [0..8) locked counter (rank 0 only),
        // [8..8+8n) accumulate tally slots, [1024..) scratch.
        let seg = a.malloc(1024 + 8 * 64);
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let counter = GlobalAddr::new(ProcId(0), seg, 0);
        let mut rng = StdRng::seed_from_u64(seed ^ (a.rank() as u64) << 32);
        a.barrier();

        let mut my_lock_increments = 0u64;
        let mut my_acc_total = 0.0f64;
        for round in 0..rounds {
            for _ in 0..rng.gen_range(3..12) {
                match rng.gen_range(0..7u32) {
                    0 => {
                        // Scratch put somewhere random.
                        let target = ProcId(rng.gen_range(0..n as u32));
                        let off = 1024 + 8 * rng.gen_range(0..32usize);
                        a.put_u64(GlobalAddr::new(target, seg, off), rng.gen());
                    }
                    1 => {
                        // Strided scratch put.
                        let target = ProcId(rng.gen_range(0..n as u32));
                        let rowb = 8 * rng.gen_range(1..4usize);
                        let desc = Strided2D { offset: 1024, rows: rng.gen_range(1..4), row_bytes: rowb, stride: 128 };
                        let data = vec![rng.gen::<u8>(); desc.total_bytes()];
                        a.put_strided(target, seg, desc, &data);
                    }
                    2 => {
                        // Random remote read (value is arbitrary; must not hang).
                        let target = ProcId(rng.gen_range(0..n as u32));
                        let mut b = [0u8; 16];
                        a.get(GlobalAddr::new(target, seg, 1024 + 8 * rng.gen_range(0..16usize)), &mut b);
                    }
                    3 => {
                        // Accumulate into the tally slot for my rank at a
                        // random host; tracked for verification.
                        let target = ProcId(rng.gen_range(0..n as u32));
                        let v = rng.gen_range(1..5) as f64;
                        a.acc_f64(GlobalAddr::new(target, seg, 8 + 8 * a.rank()), v, &[1.0]);
                        my_acc_total += v;
                    }
                    4 => {
                        // Random fence.
                        a.fence(ProcId(rng.gen_range(0..n as u32)));
                    }
                    5 => {
                        // RMW on scratch.
                        let target = ProcId(rng.gen_range(0..n as u32));
                        let _ = a.fetch_add_u64(GlobalAddr::new(target, seg, 1016), 1);
                    }
                    _ => {
                        // Locked non-atomic increment of the shared counter.
                        a.lock(lock);
                        let v = a.get_u64(counter);
                        a.put_u64(counter, v + 1);
                        a.fence(ProcId(0));
                        a.unlock(lock);
                        my_lock_increments += 1;
                    }
                }
            }
            // Global checkpoint: all effects visible, counters consistent.
            a.barrier();
            let counter_now = a.get_u64(counter);
            let mut sums = vec![my_lock_increments];
            armci_repro::armci_msglib::Group::world(a.nprocs()).allreduce_sum_u64(a, &mut sums);
            assert_eq!(counter_now, sums[0], "lost locked increments at round {round}");
            a.barrier();
        }
        // Final accumulate verification: my tally slot on every host must
        // sum (over hosts) to my_acc_total.
        a.barrier();
        let mut total = 0.0;
        for host in 0..n {
            total += a.get_f64(GlobalAddr::new(ProcId(host as u32), seg, 8 + 8 * a.rank()));
        }
        (total, my_acc_total)
    });
    let _ = nprocs;
    for (got, want) in out {
        assert!((got - want).abs() < 1e-9, "accumulate tally mismatch: {got} vs {want}");
    }
}

#[test]
fn chaos_flat_mcs() {
    chaos_run(0xC0FFEE, 4, 1, LockAlgo::Mcs, 6);
}

#[test]
fn chaos_flat_hybrid() {
    chaos_run(0xBEEF, 4, 1, LockAlgo::Hybrid, 6);
}

#[test]
fn chaos_smp_mcs_swap() {
    chaos_run(0x5EED, 2, 2, LockAlgo::McsSwap, 6);
}

#[test]
fn chaos_smp_pair_multi_seed() {
    for seed in [1u64, 2, 3] {
        chaos_run(seed, 2, 2, LockAlgo::McsPair, 3);
    }
}

#[test]
fn chaos_nic_assist() {
    let nprocs = 4u64;
    let cfg = ArmciCfg {
        nodes: 4,
        procs_per_node: 1,
        latency: LatencyModel::zero(),
        lock_algo: LockAlgo::Mcs,
        nic_assist: true,
        seed: 0x817C,
        ..Default::default()
    };
    let out = armci_repro::armci_core::run_cluster(cfg, move |a| {
        let seg = a.malloc(512);
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let ctr = GlobalAddr::new(ProcId(0), seg, 0);
        let mut rng = StdRng::seed_from_u64(a.rank() as u64 + 7);
        a.barrier();
        let mut mine = 0u64;
        for _ in 0..40 {
            match rng.gen_range(0..3u32) {
                0 => {
                    a.put_u64(GlobalAddr::new(ProcId(rng.gen_range(0..4)), seg, 256 + 8 * rng.gen_range(0..8usize)), 1)
                }
                1 => {
                    let _ = a.fetch_add_u64(GlobalAddr::new(ProcId(rng.gen_range(0..4)), seg, 128), 1);
                }
                _ => {
                    a.lock(lock);
                    let v = a.get_u64(ctr);
                    a.put_u64(ctr, v + 1);
                    a.fence(ProcId(0));
                    a.unlock(lock);
                    mine += 1;
                }
            }
        }
        a.barrier();
        let total = a.get_u64(ctr);
        let mut sums = vec![mine];
        armci_repro::armci_msglib::Group::world(a.nprocs()).allreduce_sum_u64(a, &mut sums);
        (total, sums[0])
    });
    let _ = nprocs;
    for (total, want) in out {
        assert_eq!(total, want, "NIC-assisted locked increments lost");
    }
}

#[test]
fn chaos_with_jitter() {
    let nodes = 3u32;
    let cfg = ArmciCfg {
        nodes,
        procs_per_node: 1,
        latency: LatencyModel::zero()
            .with_inter_node(std::time::Duration::from_micros(10))
            .with_jitter(std::time::Duration::from_micros(100)),
        lock_algo: LockAlgo::Mcs,
        seed: 99,
        ..Default::default()
    };
    let out = armci_repro::armci_core::run_cluster(cfg, |a| {
        let seg = a.malloc(256);
        let lock = LockId { owner: ProcId(1), idx: 0 };
        let mut rng = StdRng::seed_from_u64(a.rank() as u64);
        a.barrier();
        for _ in 0..30 {
            if rng.gen_bool(0.5) {
                a.put_u64(GlobalAddr::new(ProcId(rng.gen_range(0..3)), seg, 8 * rng.gen_range(0..8usize)), 7);
            } else {
                a.lock(lock);
                let v = a.get_u64(GlobalAddr::new(ProcId(1), seg, 128));
                a.put_u64(GlobalAddr::new(ProcId(1), seg, 128), v + 1);
                a.fence(ProcId(1));
                a.unlock(lock);
            }
        }
        a.barrier();
        a.get_u64(GlobalAddr::new(ProcId(1), seg, 128))
    });
    // All ranks agree on the final counter (exact value is random-draw
    // dependent but identical across ranks).
    assert!(out.windows(2).all(|w| w[0] == w[1]));
}
