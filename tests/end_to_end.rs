//! Cross-crate end-to-end tests: Global Arrays + locks + both sync
//! algorithms + jitter injection, running through every layer of the
//! stack at once.

use armci_repro::prelude::*;
use std::time::Duration;

#[test]
fn full_stack_ga_plus_locks_plus_barriers() {
    // 2 nodes x 2 procs: shared-memory and network paths both exercised.
    let cfg = ArmciCfg { nodes: 2, procs_per_node: 2, latency: LatencyModel::zero(), ..Default::default() };
    let out = armci_core::run_cluster(cfg, |a| {
        let ga = GlobalArray::create(a, 16, 16);
        ga.fill(a, 0.0);

        // Lock-protected accumulation into a shared cell of the array via
        // non-atomic read-modify-write, alternating sync algorithms.
        let lock = LockId { owner: ProcId(3), idx: 2 };
        for round in 0..4 {
            a.lock(lock);
            let p = Patch::new(0, 1, 0, 1);
            let v = ga.get(a, p)[0];
            ga.put(a, p, &[v + 1.0]);
            a.fence(ProcId(0));
            a.unlock(lock);
            let alg = if round % 2 == 0 { SyncAlg::Baseline } else { SyncAlg::CombinedBarrier };
            ga.sync_world(a, alg);
        }
        ga.get(a, Patch::new(0, 1, 0, 1))[0]
    });
    for v in out {
        assert_eq!(v, 16.0, "4 procs x 4 rounds of locked increments");
    }
}

#[test]
fn jitter_injection_does_not_break_protocols() {
    // Failure-injection mode: up to 200us of random extra latency per
    // inter-node message reorders deliveries *across* channels (never
    // within one), shaking out ordering assumptions.
    for seed in [1u64, 7, 42] {
        let lat =
            LatencyModel::zero().with_inter_node(Duration::from_micros(20)).with_jitter(Duration::from_micros(200));
        let cfg = ArmciCfg { nodes: 4, procs_per_node: 1, latency: lat, seed, ..Default::default() };
        let out = armci_core::run_cluster(cfg, |a| {
            let seg = a.malloc(8 * a.nprocs());
            for r in 0..a.nprocs() {
                a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), a.rank() as u64 + 1);
            }
            a.barrier();
            let mine = a.local_segment(seg);
            let sum: u64 = (0..a.nprocs()).map(|r| mine.read_u64(8 * r)).sum();

            // And a lock gauntlet under jitter.
            let lock = LockId { owner: ProcId(0), idx: 0 };
            let ctr = GlobalAddr::new(ProcId(0), seg, 0);
            for _ in 0..5 {
                a.lock(lock);
                let v = a.fetch_add_u64(ctr, 0); // read
                a.put_u64(ctr, v + 1);
                a.fence(ProcId(0));
                a.unlock(lock);
            }
            a.barrier();
            sum
        });
        for s in out {
            assert_eq!(s, 1 + 2 + 3 + 4, "seed={seed}");
        }
    }
}

#[test]
fn via_mode_full_stack() {
    let cfg = ArmciCfg::flat(4, LatencyModel::zero()).with_ack_mode(AckMode::Via);
    let out = armci_core::run_cluster(cfg, |a| {
        let ga = GlobalArray::create(a, 8, 8);
        let target = (a.rank() + 1) % a.nprocs();
        let p = ga.owned_patch(target);
        ga.put(a, p, &vec![a.rank() as f64; p.len()]);
        ga.sync_world(a, SyncAlg::Baseline); // VIA baseline drains acks
        let prev = (a.rank() + a.nprocs() - 1) % a.nprocs();
        let ok1 = ga.local_block(a).iter().all(|&v| v == prev as f64);
        // Keep round 2's puts from racing with round 1's reads.
        armci_msglib::Group::world(a.nprocs()).barrier(a);

        ga.put(a, p, &vec![(10 + a.rank()) as f64; p.len()]);
        ga.sync_world(a, SyncAlg::CombinedBarrier); // and the combined op in VIA
        let ok2 = ga.local_block(a).iter().all(|&v| v == (10 + prev) as f64);
        ok1 && ok2
    });
    assert!(out.into_iter().all(|ok| ok));
}

#[test]
fn msglib_collectives_inside_armci_runtime() {
    let out = armci_core::run_cluster(ArmciCfg::flat(5, LatencyModel::zero()), |a| {
        // Collectives and one-sided traffic interleaved on one mailbox.
        let seg = a.malloc(64);
        a.put_u64(GlobalAddr::new(ProcId(0), seg, 8 * a.rank()), 1);
        let mut v = vec![a.rank() as u64 + 1];
        Group::world(a.nprocs()).allreduce_sum_u64(a, &mut v);
        let b = Group::world(a.nprocs()).bcast(a, 2, if a.rank() == 2 { vec![9, 9] } else { vec![] });
        a.barrier();
        (v[0], b)
    });
    for (sum, b) in out {
        assert_eq!(sum, 15);
        assert_eq!(b, vec![9, 9]);
    }
}

#[test]
fn all_three_lock_algorithms_protect_ga_state() {
    for algo in [LockAlgo::Hybrid, LockAlgo::Mcs, LockAlgo::McsPair] {
        let cfg = ArmciCfg::flat(3, LatencyModel::zero()).with_lock_algo(algo);
        let out = armci_core::run_cluster(cfg, |a| {
            let ga = GlobalArray::create(a, 8, 8);
            ga.fill(a, 0.0);
            let lock = LockId { owner: ProcId(1), idx: 0 };
            for _ in 0..10 {
                a.lock(lock);
                let p = Patch::new(7, 8, 7, 8);
                let v = ga.get(a, p)[0];
                ga.put(a, p, &[v + 1.0]);
                a.allfence();
                a.unlock(lock);
            }
            a.barrier();
            ga.get(a, Patch::new(7, 8, 7, 8))[0]
        });
        for v in out {
            assert_eq!(v, 30.0, "algo {algo:?}");
        }
    }
}

#[test]
fn sixteen_proc_paper_scale_smoke() {
    // The paper's full 16-process scale, zero latency for speed.
    let out = armci_core::run_cluster(ArmciCfg::flat(16, LatencyModel::zero()), |a| {
        let seg = a.malloc(8 * a.nprocs());
        for r in 0..a.nprocs() {
            a.put_u64(GlobalAddr::new(ProcId(r as u32), seg, 8 * a.rank()), 1);
        }
        a.barrier();
        let mine = a.local_segment(seg);
        (0..a.nprocs()).map(|r| mine.read_u64(8 * r)).sum::<u64>()
    });
    assert_eq!(out, vec![16u64; 16]);
}

#[test]
fn wallclock_latency_ordering_sanity() {
    // With real injected latency, the combined barrier must complete all
    // remote puts: read-your-writes through a third party.
    let lat = LatencyModel::zero().with_inter_node(Duration::from_micros(100));
    let out = armci_core::run_cluster(ArmciCfg::flat(3, lat), |a| {
        let seg = a.malloc(16);
        if a.rank() == 0 {
            a.put_u64(GlobalAddr::new(ProcId(1), seg, 0), 77);
        }
        a.barrier();
        if a.rank() == 2 {
            // Rank 2 reads rank 1's memory: must see rank 0's put.
            let mut b = [0u8; 8];
            a.get(GlobalAddr::new(ProcId(1), seg, 0), &mut b);
            return u64::from_le_bytes(b);
        }
        77
    });
    assert_eq!(out, vec![77, 77, 77]);
}
