//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use armci_repro::prelude::*;
use armci_transport::Segment;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Segment byte store vs a plain Vec<u8> model
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segment_matches_vec_model(ops in proptest::collection::vec(
        (0usize..200, proptest::collection::vec(any::<u8>(), 0..50)), 1..40)) {
        let seg = Segment::new(256);
        let mut model = vec![0u8; 256];
        for (off, data) in ops {
            if off + data.len() > 256 { continue; }
            seg.write_bytes(off, &data);
            model[off..off + data.len()].copy_from_slice(&data);
        }
        let mut out = vec![0u8; 256];
        seg.read_bytes(0, &mut out);
        prop_assert_eq!(out, model);
    }

    #[test]
    fn segment_partial_reads_match(off in 0usize..100, len in 0usize..100) {
        let seg = Segment::new(256);
        let all: Vec<u8> = (0..=255u8).collect();
        seg.write_bytes(0, &all);
        let mut out = vec![0u8; len];
        seg.read_bytes(off, &mut out);
        prop_assert_eq!(&out[..], &all[off..off + len]);
    }

    // -----------------------------------------------------------------
    // Packed global pointers
    // -----------------------------------------------------------------

    #[test]
    fn packed_ptr_roundtrip(proc in 0u32..=0xFFFE, seg in 0u32..=255, off in 0usize..=0xFF_FFFF) {
        let a = GlobalAddr::new(ProcId(proc), SegId(seg), off);
        prop_assert_eq!(a.pack().decode(), Some(a));
        prop_assert_eq!(GlobalAddr::from_pair(a.to_pair()), Some(a));
        prop_assert!(!a.pack().is_null());
    }

    #[test]
    fn packed_ptrs_are_injective(a_proc in 0u32..16, a_off in 0usize..1024,
                                 b_proc in 0u32..16, b_off in 0usize..1024) {
        let a = GlobalAddr::new(ProcId(a_proc), SegId(0), a_off);
        let b = GlobalAddr::new(ProcId(b_proc), SegId(0), b_off);
        prop_assert_eq!(a.pack() == b.pack(), a == b);
    }

    // -----------------------------------------------------------------
    // Strided descriptors
    // -----------------------------------------------------------------

    #[test]
    fn strided_put_get_matches_naive(rows in 1usize..6, row_bytes in 1usize..24,
                                     gap in 0usize..16, offset in 0usize..32) {
        let stride = row_bytes + gap;
        let desc = Strided2D { offset, rows, row_bytes, stride };
        let seg_len = desc.end_offset() + 8;
        let seg = Segment::new(seg_len);
        let data: Vec<u8> = (0..desc.total_bytes()).map(|i| (i * 37 % 251) as u8).collect();

        // Write via the descriptor's row iterator (what the server does).
        for (r, off) in desc.row_offsets().enumerate() {
            seg.write_bytes(off, &data[r * row_bytes..(r + 1) * row_bytes]);
        }
        // Naive model.
        let mut model = vec![0u8; seg_len];
        for r in 0..rows {
            let off = offset + r * stride;
            model[off..off + row_bytes].copy_from_slice(&data[r * row_bytes..(r + 1) * row_bytes]);
        }
        let mut out = vec![0u8; seg_len];
        seg.read_bytes(0, &mut out);
        prop_assert_eq!(out, model);
    }

    // -----------------------------------------------------------------
    // GA distribution: split_by_owner covers each element exactly once
    // -----------------------------------------------------------------

    #[test]
    fn patch_split_partitions(nprocs in 1usize..10, rows in 10usize..24, cols in 10usize..24,
                              rl in 0usize..10, rh_d in 1usize..8, cl in 0usize..10, ch_d in 1usize..8) {
        let dist = armci_ga::Distribution::new(rows, cols, nprocs);
        let patch = Patch::new(rl.min(rows-1), (rl + rh_d).min(rows), cl.min(cols-1), (cl + ch_d).min(cols));
        let pieces = dist.split_by_owner(&patch);
        let mut seen = std::collections::HashMap::new();
        for (rank, piece) in &pieces {
            for r in piece.row_lo..piece.row_hi {
                for c in piece.col_lo..piece.col_hi {
                    prop_assert_eq!(dist.owner_of(r, c), *rank, "element assigned to wrong owner");
                    prop_assert!(seen.insert((r, c), *rank).is_none(), "element covered twice");
                }
            }
        }
        prop_assert_eq!(seen.len(), patch.len(), "coverage incomplete");
    }

    // -----------------------------------------------------------------
    // Simulator: barrier cost formula for arbitrary powers of two
    // -----------------------------------------------------------------

    #[test]
    fn simnet_combined_cost_formula(log_n in 1u32..9, l in 1u64..100_000) {
        let n = 1usize << log_n;
        let r = armci_simnet::protocols::sync::simulate_combined_barrier(
            n, armci_simnet::NetModel::latency_only(l));
        prop_assert_eq!(r.max(), 2 * log_n as u64 * l);
    }

    #[test]
    fn simnet_baseline_cost_formula(log_n in 1u32..7, l in 1u64..100_000) {
        let n = 1usize << log_n;
        let r = armci_simnet::protocols::sync::simulate_sync_baseline(
            n, n - 1, armci_simnet::NetModel::latency_only(l));
        prop_assert_eq!(r.max(), (2 * (n as u64 - 1) + log_n as u64) * l);
    }

    #[test]
    fn simnet_combined_always_beats_baseline_all_to_all(n in 4usize..64) {
        let net = armci_simnet::NetModel::myrinet_2000();
        let base = armci_simnet::protocols::sync::simulate_sync_baseline(n, n - 1, net);
        let comb = armci_simnet::protocols::sync::simulate_combined_barrier(n, net);
        prop_assert!(comb.mean() < base.mean(), "n={}: {} !< {}", n, comb.mean(), base.mean());
    }
}

// ---------------------------------------------------------------------
// Randomized end-to-end put/get consistency through the real runtime
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_put_patterns_are_visible_after_barrier(
        writes in proptest::collection::vec((0usize..4, 0usize..16, any::<u64>()), 1..20),
        seed in 1u64..1000,
    ) {
        let cfg = ArmciCfg::flat(4, LatencyModel::zero()).with_seed(seed);
        let writes2 = writes.clone();
        let out = armci_core::run_cluster(cfg, move |a| {
            let seg = a.malloc(16 * 8);
            a.barrier();
            // Rank 0 performs the random writes; everyone barriers.
            if a.rank() == 0 {
                for &(target, slot, val) in &writes2 {
                    a.put_u64(GlobalAddr::new(ProcId(target as u32), seg, 8 * slot), val);
                }
            }
            a.barrier();
            // Everyone reads every slot of every target remotely.
            let mut snapshot = Vec::new();
            for t in 0..a.nprocs() {
                for s in 0..16 {
                    let mut b = [0u8; 8];
                    a.get(GlobalAddr::new(ProcId(t as u32), seg, 8 * s), &mut b);
                    snapshot.push(u64::from_le_bytes(b));
                }
            }
            snapshot
        });
        // Model: last write per (target, slot) wins (single writer).
        let mut model = vec![0u64; 4 * 16];
        for (target, slot, val) in writes {
            model[target * 16 + slot] = val;
        }
        for snap in out {
            prop_assert_eq!(&snap, &model);
        }
    }
}
