//! Cross-harness protocol conformance: the same sans-IO engines
//! (`armci-proto`) are driven by three harnesses — the threaded emulator
//! runtime, the netfab TCP loopback runtime, and the discrete-event
//! simulator. These tests replay identical seeded operation schedules
//! through each and assert the engines emitted *identical* protocol
//! message sequences (stage, destination, schedule message), so the
//! model plane provably simulates the protocol the runtime executes.

use armci_proto::SendRecord;
use armci_repro::prelude::*;

/// Deterministic per-rank put schedule: a few counted puts at seeded
/// targets, so the barrier's `op_init[]` values differ by seed while the
/// protocol schedule (the thing under test) must not.
fn seeded_puts(a: &mut Armci, seg: SegId, seed: u64) {
    let n = a.nprocs();
    let mut x = seed ^ (a.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..(1 + a.rank() % 3) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let dst = ((x >> 33) as usize) % n;
        a.put_u64(GlobalAddr::new(ProcId(dst as u32), seg, 8 * a.rank()), x);
    }
}

/// Per-rank barrier send trace from the threaded emulator.
fn emulator_logs(n: u32, seed: u64) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero());
    armci_repro::armci_core::run_cluster(cfg, move |a| {
        let seg = a.malloc(8 * a.nprocs());
        seeded_puts(a, seg, seed);
        a.barrier();
        a.take_barrier_log()
    })
}

/// Per-rank barrier send trace over real loopback TCP (netfab).
fn netfab_logs(n: u32, seed: u64) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero());
    armci_repro::armci_core::run_cluster_net_loopback(cfg, move |a| {
        let seg = a.malloc(8 * a.nprocs());
        seeded_puts(a, seg, seed);
        a.barrier();
        a.take_barrier_log()
    })
}

/// Per-rank barrier send trace from the simulator-driven engine.
fn simnet_logs(n: usize) -> Vec<Vec<SendRecord>> {
    armci_repro::armci_simnet::protocols::sync::simulate_combined_barrier_logged(
        n,
        armci_repro::armci_simnet::NetModel::myrinet_2000(),
    )
    .1
}

#[test]
fn combined_barrier_trace_identical_emulator_vs_simnet() {
    for (n, seed) in [(2usize, 11u64), (4, 17), (5, 23), (8, 5)] {
        let emu = emulator_logs(n as u32, seed);
        let sim = simnet_logs(n);
        assert_eq!(emu.len(), n);
        for rank in 0..n {
            assert_eq!(emu[rank], sim[rank], "n={n} rank={rank}: runtime-driven and simulator-driven engines diverged");
        }
        // The trace is not vacuous: at n >= 2 every rank sends something.
        assert!(emu.iter().all(|l| !l.is_empty()), "n={n}: empty trace");
    }
}

#[test]
fn combined_barrier_trace_identical_netfab_vs_simnet() {
    for (n, seed) in [(3usize, 41u64), (4, 7)] {
        let net = netfab_logs(n as u32, seed);
        let sim = simnet_logs(n);
        for rank in 0..n {
            assert_eq!(net[rank], sim[rank], "n={n} rank={rank}: netfab and simulator engines diverged");
        }
    }
}

#[test]
fn trace_is_seed_invariant_on_the_runtime() {
    // The protocol schedule depends on (n, rank) only — the put workload
    // (and hence the allreduce payload) must not change who talks to whom.
    let a = emulator_logs(6, 1);
    let b = emulator_logs(6, 999);
    assert_eq!(a, b);
}
