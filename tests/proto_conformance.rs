//! Cross-harness protocol conformance: the same sans-IO engines
//! (`armci-proto`) are driven by three harnesses — the threaded emulator
//! runtime, the netfab TCP loopback runtime, and the discrete-event
//! simulator. These tests replay identical seeded operation schedules
//! through each and assert the engines emitted *identical* protocol
//! message sequences (stage, destination, schedule message), so the
//! model plane provably simulates the protocol the runtime executes.

use armci_proto::{HierMsg, HierRecord, SendRecord};
use armci_repro::prelude::*;

/// Deterministic per-rank put schedule: a few counted puts at seeded
/// targets, so the barrier's `op_init[]` values differ by seed while the
/// protocol schedule (the thing under test) must not.
fn seeded_puts(a: &mut Armci, seg: SegId, seed: u64) {
    let n = a.nprocs();
    let mut x = seed ^ (a.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..(1 + a.rank() % 3) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let dst = ((x >> 33) as usize) % n;
        a.put_u64(GlobalAddr::new(ProcId(dst as u32), seg, 8 * a.rank()), x);
    }
}

/// Per-rank barrier send trace from the threaded emulator.
fn emulator_logs(n: u32, seed: u64) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero());
    armci_repro::armci_core::run_cluster(cfg, move |a| {
        let seg = a.malloc(8 * a.nprocs());
        seeded_puts(a, seg, seed);
        a.barrier();
        a.take_barrier_log()
    })
}

/// Per-rank barrier send trace over real loopback TCP (netfab).
fn netfab_logs(n: u32, seed: u64) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero());
    armci_repro::armci_core::run_cluster_net_loopback(cfg, move |a| {
        let seg = a.malloc(8 * a.nprocs());
        seeded_puts(a, seg, seed);
        a.barrier();
        a.take_barrier_log()
    })
}

/// Per-rank barrier send trace from the simulator-driven engine.
fn simnet_logs(n: usize) -> Vec<Vec<SendRecord>> {
    armci_repro::armci_simnet::protocols::sync::simulate_combined_barrier_logged(
        n,
        armci_repro::armci_simnet::NetModel::myrinet_2000(),
    )
    .1
}

#[test]
fn combined_barrier_trace_identical_emulator_vs_simnet() {
    for (n, seed) in [(2usize, 11u64), (4, 17), (5, 23), (8, 5)] {
        let emu = emulator_logs(n as u32, seed);
        let sim = simnet_logs(n);
        assert_eq!(emu.len(), n);
        for rank in 0..n {
            assert_eq!(emu[rank], sim[rank], "n={n} rank={rank}: runtime-driven and simulator-driven engines diverged");
        }
        // The trace is not vacuous: at n >= 2 every rank sends something.
        assert!(emu.iter().all(|l| !l.is_empty()), "n={n}: empty trace");
    }
}

#[test]
fn combined_barrier_trace_identical_netfab_vs_simnet() {
    for (n, seed) in [(3usize, 41u64), (4, 7)] {
        let net = netfab_logs(n as u32, seed);
        let sim = simnet_logs(n);
        for rank in 0..n {
            assert_eq!(net[rank], sim[rank], "n={n} rank={rank}: netfab and simulator engines diverged");
        }
    }
}

#[test]
fn trace_is_seed_invariant_on_the_runtime() {
    // The protocol schedule depends on (n, rank) only — the put workload
    // (and hence the allreduce payload) must not change who talks to whom.
    let a = emulator_logs(6, 1);
    let b = emulator_logs(6, 999);
    assert_eq!(a, b);
}

// ---- Group-scoped conformance -------------------------------------------

/// Seeded puts restricted to the members of a group (so the group fence
/// and the per-source op counts see member traffic only).
fn seeded_member_puts(a: &mut Armci, seg: SegId, members: &[usize], seed: u64) {
    let mut x = seed ^ (a.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..(1 + a.rank() % 3) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let dst = members[((x >> 33) as usize) % members.len()];
        a.put_u64(GlobalAddr::new(ProcId(dst as u32), seg, 8 * a.rank()), x);
    }
}

/// Per-member flat group-barrier trace (indexed by group rank) from
/// either in-process runtime (`net` selects netfab loopback).
fn group_logs(n: u32, members: &'static [usize], seed: u64, net: bool) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero());
    let body = move |a: &mut Armci| {
        let seg = a.malloc(8 * a.nprocs());
        if !members.contains(&a.rank()) {
            a.barrier();
            return None;
        }
        let g = a.group(members);
        seeded_member_puts(a, seg, members, seed);
        a.barrier_group(&g);
        let log = a.take_barrier_log();
        a.barrier();
        Some(log)
    };
    let per_rank = if net {
        armci_repro::armci_core::run_cluster_net_loopback(cfg, body)
    } else {
        armci_repro::armci_core::run_cluster(cfg, body)
    };
    members.iter().map(|&m| per_rank[m].clone().expect("member produced no log")).collect()
}

/// The flat group barrier's engine schedule depends only on (group size,
/// group rank): a subset group's trace is message-identical to the
/// simulator's whole-world trace at the group's size — including a
/// non-power-of-two 5-of-8 subset.
#[test]
fn group_barrier_trace_identical_emulator_vs_simnet() {
    for (members, seed) in [(&[1usize, 3, 4, 6][..], 13u64), (&[0, 2, 3, 5, 7][..], 29)] {
        let emu = group_logs(8, members, seed, false);
        let sim = simnet_logs(members.len());
        for g_rank in 0..members.len() {
            assert_eq!(
                emu[g_rank], sim[g_rank],
                "members={members:?} group-rank={g_rank}: group runtime and simulator engines diverged"
            );
        }
    }
}

#[test]
fn group_barrier_trace_identical_netfab_vs_simnet() {
    let members: &[usize] = &[0, 2, 3];
    let net = group_logs(4, members, 19, true);
    let sim = simnet_logs(members.len());
    for g_rank in 0..members.len() {
        assert_eq!(net[g_rank], sim[g_rank], "group-rank={g_rank}: netfab group and simulator engines diverged");
    }
}

/// Two overlapping groups barrier back to back; each group's trace is
/// identical to the simulator trace at that group's size, and the
/// overlap (ranks in both) does not perturb either schedule.
#[test]
fn overlapping_group_traces_each_match_simnet() {
    let g1_m: &[usize] = &[0, 1, 2, 3, 4];
    let g2_m: &[usize] = &[3, 4, 5];
    let logs = armci_repro::armci_core::run_cluster(ArmciCfg::flat(6, LatencyModel::zero()), move |a| {
        let seg = a.malloc(8 * a.nprocs());
        let g1 = g1_m.contains(&a.rank()).then(|| a.group(g1_m));
        let g2 = g2_m.contains(&a.rank()).then(|| a.group(g2_m));
        let l1 = g1.map(|g| {
            seeded_member_puts(a, seg, g1_m, 3);
            a.barrier_group(&g);
            a.take_barrier_log()
        });
        let l2 = g2.map(|g| {
            a.barrier_group(&g);
            a.take_barrier_log()
        });
        a.barrier();
        (l1, l2)
    });
    let sim1 = simnet_logs(g1_m.len());
    let sim2 = simnet_logs(g2_m.len());
    for (g_rank, &m) in g1_m.iter().enumerate() {
        assert_eq!(logs[m].0.as_ref().unwrap(), &sim1[g_rank], "g1 rank {g_rank}");
    }
    for (g_rank, &m) in g2_m.iter().enumerate() {
        assert_eq!(logs[m].1.as_ref().unwrap(), &sim2[g_rank], "g2 rank {g_rank}");
    }
}

// ---- Hierarchical conformance -------------------------------------------

/// Per-rank (domains, hier log) from an SMP cluster with hierarchical
/// collectives on, via the emulator or netfab loopback.
fn hier_logs(nodes: u32, ppn: u32, net: bool) -> Vec<(Vec<Vec<usize>>, Vec<HierRecord>)> {
    let cfg = ArmciCfg { nodes, procs_per_node: ppn, latency: LatencyModel::zero(), ..Default::default() }
        .with_hier_collectives(true);
    let body = |a: &mut Armci| {
        let members: Vec<usize> = (0..a.nprocs()).collect();
        let g = a.group(&members);
        let domains = g.domains().expect("hier_collectives on").to_vec();
        a.barrier_group(&g);
        let log = a.take_hier_log();
        a.barrier();
        (domains, log)
    };
    if net {
        armci_repro::armci_core::run_cluster_net_loopback(cfg, body)
    } else {
        armci_repro::armci_core::run_cluster(cfg, body)
    }
}

/// The hierarchical barrier's schedule — counter legs and leader
/// exchange alike — is identical whether the engine is driven by the
/// emulator runtime or by the simulator replaying the same domain
/// partition; leaders send exactly `log2(domains)` exchange messages.
#[test]
fn hier_barrier_trace_identical_emulator_vs_simnet() {
    for (nodes, ppn) in [(2u32, 2u32), (4, 2), (4, 3)] {
        let per_rank = hier_logs(nodes, ppn, false);
        let domains = per_rank[0].0.clone();
        assert_eq!(domains.len(), nodes as usize, "domains are the node partition");
        let (_, sim) = armci_repro::armci_simnet::protocols::sync::simulate_hier_barrier_logged(
            &domains,
            armci_repro::armci_simnet::NetModel::myrinet_2000(),
        );
        let rounds = (nodes as usize).ilog2() as usize;
        for (rank, (doms, log)) in per_rank.iter().enumerate() {
            assert_eq!(doms, &domains, "rank {rank}: divergent domain partition");
            assert_eq!(log, &sim[rank], "nodes={nodes} ppn={ppn} rank={rank}: hier engines diverged");
            let xchg = log.iter().filter(|r| matches!(r.msg, HierMsg::Xchg(_))).count();
            let is_leader = domains.iter().any(|d| d[0] == rank);
            if is_leader {
                assert_eq!(xchg, rounds, "leader exchange rounds must be log2(nodes)");
            } else {
                assert_eq!(xchg, 0, "non-leaders never exchange");
            }
        }
    }
}

#[test]
fn hier_barrier_trace_identical_netfab_vs_simnet() {
    let per_rank = hier_logs(2, 2, true);
    let domains = per_rank[0].0.clone();
    let (_, sim) = armci_repro::armci_simnet::protocols::sync::simulate_hier_barrier_logged(
        &domains,
        armci_repro::armci_simnet::NetModel::myrinet_2000(),
    );
    for (rank, (doms, log)) in per_rank.iter().enumerate() {
        assert_eq!(doms, &domains);
        assert_eq!(log, &sim[rank], "rank={rank}: netfab and simulator hier engines diverged");
    }
}
