//! Cross-harness protocol conformance: the same sans-IO engines
//! (`armci-proto`) are driven by three harnesses — the threaded emulator
//! runtime, the netfab TCP loopback runtime, and the discrete-event
//! simulator. These tests replay identical seeded operation schedules
//! through each and assert the engines emitted *identical* protocol
//! message sequences (stage, destination, schedule message), so the
//! model plane provably simulates the protocol the runtime executes.

use armci_proto::{HierMsg, HierRecord, SendRecord};
use armci_repro::prelude::*;

/// Deterministic per-rank put schedule: a few counted puts at seeded
/// targets, so the barrier's `op_init[]` values differ by seed while the
/// protocol schedule (the thing under test) must not.
fn seeded_puts(a: &mut Armci, seg: SegId, seed: u64) {
    let n = a.nprocs();
    let mut x = seed ^ (a.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..(1 + a.rank() % 3) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let dst = ((x >> 33) as usize) % n;
        a.put_u64(GlobalAddr::new(ProcId(dst as u32), seg, 8 * a.rank()), x);
    }
}

/// Per-rank barrier send trace from the threaded emulator.
fn emulator_logs(n: u32, seed: u64) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero());
    armci_repro::armci_core::run_cluster(cfg, move |a| {
        let seg = a.malloc(8 * a.nprocs());
        seeded_puts(a, seg, seed);
        a.barrier();
        a.take_barrier_log()
    })
}

/// Per-rank barrier send trace over real loopback TCP (netfab).
fn netfab_logs(n: u32, seed: u64) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero());
    armci_repro::armci_core::run_cluster_net_loopback(cfg, move |a| {
        let seg = a.malloc(8 * a.nprocs());
        seeded_puts(a, seg, seed);
        a.barrier();
        a.take_barrier_log()
    })
}

/// Per-rank barrier send trace from the simulator-driven engine.
fn simnet_logs(n: usize) -> Vec<Vec<SendRecord>> {
    armci_repro::armci_simnet::protocols::sync::simulate_combined_barrier_logged(
        n,
        armci_repro::armci_simnet::NetModel::myrinet_2000(),
    )
    .1
}

#[test]
fn combined_barrier_trace_identical_emulator_vs_simnet() {
    for (n, seed) in [(2usize, 11u64), (4, 17), (5, 23), (8, 5)] {
        let emu = emulator_logs(n as u32, seed);
        let sim = simnet_logs(n);
        assert_eq!(emu.len(), n);
        for rank in 0..n {
            assert_eq!(emu[rank], sim[rank], "n={n} rank={rank}: runtime-driven and simulator-driven engines diverged");
        }
        // The trace is not vacuous: at n >= 2 every rank sends something.
        assert!(emu.iter().all(|l| !l.is_empty()), "n={n}: empty trace");
    }
}

#[test]
fn combined_barrier_trace_identical_netfab_vs_simnet() {
    for (n, seed) in [(3usize, 41u64), (4, 7)] {
        let net = netfab_logs(n as u32, seed);
        let sim = simnet_logs(n);
        for rank in 0..n {
            assert_eq!(net[rank], sim[rank], "n={n} rank={rank}: netfab and simulator engines diverged");
        }
    }
}

#[test]
fn trace_is_seed_invariant_on_the_runtime() {
    // The protocol schedule depends on (n, rank) only — the put workload
    // (and hence the allreduce payload) must not change who talks to whom.
    let a = emulator_logs(6, 1);
    let b = emulator_logs(6, 999);
    assert_eq!(a, b);
}

// ---- Group-scoped conformance -------------------------------------------

/// Seeded puts restricted to the members of a group (so the group fence
/// and the per-source op counts see member traffic only).
fn seeded_member_puts(a: &mut Armci, seg: SegId, members: &[usize], seed: u64) {
    let mut x = seed ^ (a.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..(1 + a.rank() % 3) {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let dst = members[((x >> 33) as usize) % members.len()];
        a.put_u64(GlobalAddr::new(ProcId(dst as u32), seg, 8 * a.rank()), x);
    }
}

/// Per-member flat group-barrier trace (indexed by group rank) from
/// either in-process runtime (`net` selects netfab loopback).
fn group_logs(n: u32, members: &'static [usize], seed: u64, net: bool) -> Vec<Vec<SendRecord>> {
    // The *flat* group protocol is under test; pin the hierarchy off so
    // an active shm plane can't merge same-host ranks into one domain.
    let cfg = ArmciCfg::flat(n, LatencyModel::zero()).with_hier_collectives(false);
    let body = move |a: &mut Armci| {
        let seg = a.malloc(8 * a.nprocs());
        if !members.contains(&a.rank()) {
            a.barrier();
            return None;
        }
        let g = a.group(members);
        seeded_member_puts(a, seg, members, seed);
        a.barrier_group(&g);
        let log = a.take_barrier_log();
        a.barrier();
        Some(log)
    };
    let per_rank = if net {
        armci_repro::armci_core::run_cluster_net_loopback(cfg, body)
    } else {
        armci_repro::armci_core::run_cluster(cfg, body)
    };
    members.iter().map(|&m| per_rank[m].clone().expect("member produced no log")).collect()
}

/// The flat group barrier's engine schedule depends only on (group size,
/// group rank): a subset group's trace is message-identical to the
/// simulator's whole-world trace at the group's size — including a
/// non-power-of-two 5-of-8 subset.
#[test]
fn group_barrier_trace_identical_emulator_vs_simnet() {
    for (members, seed) in [(&[1usize, 3, 4, 6][..], 13u64), (&[0, 2, 3, 5, 7][..], 29)] {
        let emu = group_logs(8, members, seed, false);
        let sim = simnet_logs(members.len());
        for g_rank in 0..members.len() {
            assert_eq!(
                emu[g_rank], sim[g_rank],
                "members={members:?} group-rank={g_rank}: group runtime and simulator engines diverged"
            );
        }
    }
}

#[test]
fn group_barrier_trace_identical_netfab_vs_simnet() {
    let members: &[usize] = &[0, 2, 3];
    let net = group_logs(4, members, 19, true);
    let sim = simnet_logs(members.len());
    for g_rank in 0..members.len() {
        assert_eq!(net[g_rank], sim[g_rank], "group-rank={g_rank}: netfab group and simulator engines diverged");
    }
}

/// Two overlapping groups barrier back to back; each group's trace is
/// identical to the simulator trace at that group's size, and the
/// overlap (ranks in both) does not perturb either schedule.
#[test]
fn overlapping_group_traces_each_match_simnet() {
    let g1_m: &[usize] = &[0, 1, 2, 3, 4];
    let g2_m: &[usize] = &[3, 4, 5];
    let cfg = ArmciCfg::flat(6, LatencyModel::zero()).with_hier_collectives(false);
    let logs = armci_repro::armci_core::run_cluster(cfg, move |a| {
        let seg = a.malloc(8 * a.nprocs());
        let g1 = g1_m.contains(&a.rank()).then(|| a.group(g1_m));
        let g2 = g2_m.contains(&a.rank()).then(|| a.group(g2_m));
        let l1 = g1.map(|g| {
            seeded_member_puts(a, seg, g1_m, 3);
            a.barrier_group(&g);
            a.take_barrier_log()
        });
        let l2 = g2.map(|g| {
            a.barrier_group(&g);
            a.take_barrier_log()
        });
        a.barrier();
        (l1, l2)
    });
    let sim1 = simnet_logs(g1_m.len());
    let sim2 = simnet_logs(g2_m.len());
    for (g_rank, &m) in g1_m.iter().enumerate() {
        assert_eq!(logs[m].0.as_ref().unwrap(), &sim1[g_rank], "g1 rank {g_rank}");
    }
    for (g_rank, &m) in g2_m.iter().enumerate() {
        assert_eq!(logs[m].1.as_ref().unwrap(), &sim2[g_rank], "g2 rank {g_rank}");
    }
}

// ---- Eviction / degraded-mode conformance -------------------------------

/// Survivor shrunk-group barrier traces (indexed by group rank) after a
/// deterministically injected eviction of `victim`: every rank quiesces
/// on a world barrier, the victim goes silent, and the survivors inject
/// the membership eviction ([`Armci::evict_node`] — the emulator backend
/// never loses peers, so deterministic scenarios inject instead of
/// scripting a death), shrink the world group, and barrier over it.
fn evicted_runtime_logs(n: u32, victim: usize, net: bool) -> Vec<Vec<SendRecord>> {
    let cfg = ArmciCfg::flat(n, LatencyModel::zero())
        .with_on_peer_loss(armci_repro::armci_core::OnPeerLoss::Degrade)
        .with_hier_collectives(false); // flat-schedule trace comparison
    let body = move |a: &mut Armci| {
        let seg = a.malloc(8 * a.nprocs());
        a.barrier();
        let _ = a.take_barrier_log(); // discard the quiesce trace
        if a.rank() == victim {
            return None; // silent from here on: no further collectives
        }
        let epoch = a.evict_node(NodeId(victim as u32));
        assert_eq!(epoch, 1, "exactly one rank evicted");
        let world: Vec<usize> = (0..a.nprocs()).collect();
        let g = a.group(&world);
        let shrunk = a.try_shrink_group(&g).expect("survivor shrinks the world group");
        assert_eq!(shrunk.len(), a.nprocs() - 1);
        // Survivor-to-survivor puts so the barrier's op counters are
        // nonzero (the schedule under test must not depend on them).
        let (me, np) = (a.rank(), a.nprocs());
        for (i, dst) in (0..np).filter(|&r| r != victim && r != me).enumerate() {
            a.put_u64(GlobalAddr::new(ProcId(dst as u32), seg, 8 * me), 0xE0 + i as u64);
        }
        a.try_barrier_group(&shrunk).expect("survivors complete the shrunk barrier");
        Some(a.take_barrier_log())
    };
    let per_rank = if net {
        armci_repro::armci_core::run_cluster_net_loopback(cfg, body)
    } else {
        armci_repro::armci_core::run_cluster(cfg, body)
    };
    (0..n as usize).filter(|&r| r != victim).map(|r| per_rank[r].clone().expect("survivor produced no log")).collect()
}

/// After an eviction, the survivors' shrunk-group barrier is a fresh
/// (n-1)-rank schedule: its trace must be message-identical to the
/// simulator's whole-world trace at the survivor count — the degraded
/// runtime converges on exactly the protocol a healthy (n-1)-rank world
/// would run.
#[test]
fn shrunk_barrier_after_eviction_trace_identical_emulator_vs_simnet() {
    for (n, victim) in [(4usize, 2usize), (5, 0), (8, 7)] {
        let emu = evicted_runtime_logs(n as u32, victim, false);
        let sim = simnet_logs(n - 1);
        assert_eq!(emu.len(), n - 1);
        for g_rank in 0..n - 1 {
            assert_eq!(
                emu[g_rank], sim[g_rank],
                "n={n} victim={victim} group-rank={g_rank}: degraded runtime and simulator engines diverged"
            );
        }
        assert!(emu.iter().all(|l| !l.is_empty()), "n={n}: empty survivor trace");
    }
}

#[test]
fn shrunk_barrier_after_eviction_trace_identical_netfab_vs_simnet() {
    let (n, victim) = (4usize, 1usize);
    let net = evicted_runtime_logs(n as u32, victim, true);
    let sim = simnet_logs(n - 1);
    for g_rank in 0..n - 1 {
        assert_eq!(
            net[g_rank], sim[g_rank],
            "victim={victim} group-rank={g_rank}: degraded netfab and simulator engines diverged"
        );
    }
}

/// Deterministic lockstep drive of the sans-IO `Exchange` engines for
/// the combined barrier with `victim` dying at the closing barrier
/// stage: the victim contributes to the value-carrying allreduce (stage
/// 0) and never enters the barrier stage; once the survivor exchange is
/// quiescent (everyone parked on a victim-dependent slot), the eviction
/// is folded into every survivor's stage-1 engine and the drive drains
/// to completion. Mirrors what the simulator's 1 ms eviction timer does
/// under the virtual clock.
fn lockstep_evicted_drive(n: usize, victim: usize) -> Vec<Vec<SendRecord>> {
    use armci_proto::{Exchange, XchgAction, XchgEvent, XchgMsg};
    use std::collections::VecDeque;

    struct Rank {
        /// Stage engines (victim: allreduce only; survivors: both).
        stages: Vec<Exchange>,
        cur: usize,
        /// Per-stage send logs; concatenation is the conformance trace.
        logs: Vec<Vec<SendRecord>>,
        out: Vec<XchgAction>,
    }
    let mut ranks: Vec<Rank> = (0..n)
        .map(|p| {
            let nstages = if p == victim { 1 } else { 2 };
            Rank {
                stages: (0..nstages).map(|_| Exchange::new(n, p)).collect(),
                cur: 0,
                logs: vec![Vec::new(); nstages],
                out: Vec::new(),
            }
        })
        .collect();
    let mut queue: VecDeque<(usize, usize, XchgMsg)> = VecDeque::new();

    /// Flush emitted actions (only the current stage ever emits) and
    /// step into the next stage when the current one completes.
    fn pump(r: &mut Rank, victim: usize, queue: &mut VecDeque<(usize, usize, XchgMsg)>) {
        loop {
            let cur = r.cur;
            for a in r.out.drain(..) {
                if let XchgAction::Send { to, msg } = a {
                    r.logs[cur].push(SendRecord { stage: cur as u8, to: to as u32, msg });
                    // The dead rank never entered the barrier stage; the
                    // send is logged (the schedule still emits it) but
                    // dropped at the "transport", like the degraded
                    // runtime and the simulator's stash both do.
                    if !(to == victim && cur == 1) {
                        queue.push_back((to, cur, msg));
                    }
                }
            }
            if r.cur < r.stages.len() && r.stages[r.cur].is_complete() {
                r.cur += 1;
                if r.cur < r.stages.len() {
                    let cur = r.cur;
                    r.stages[cur].poll(XchgEvent::Start, &mut r.out);
                    continue;
                }
            }
            break;
        }
    }

    for r in ranks.iter_mut() {
        r.stages[0].poll(XchgEvent::Start, &mut r.out);
        pump(r, victim, &mut queue);
    }
    let drain = |ranks: &mut Vec<Rank>, queue: &mut VecDeque<(usize, usize, XchgMsg)>| {
        let mut steps = 0;
        while let Some((to, stage, msg)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "lockstep drive does not converge");
            let r = &mut ranks[to];
            // Pre-entry deliveries are legal: the engine records them and
            // acts at its own Start, exactly like the actors' stash.
            r.stages[stage].poll(XchgEvent::Recv(msg), &mut r.out);
            pump(r, victim, queue);
        }
    };
    drain(&mut ranks, &mut queue);
    // Survivor exchange is quiescent: every survivor still incomplete is
    // parked on a slot only the dead rank could fill. Fold the eviction
    // into all survivors before delivering anything further (the
    // simulator's timers all fire at the same virtual instant).
    for p in (0..n).filter(|&p| p != victim) {
        let r = &mut ranks[p];
        r.stages[1].evict(victim, &mut r.out);
        pump(r, victim, &mut queue);
    }
    drain(&mut ranks, &mut queue);
    for (p, r) in ranks.iter().enumerate() {
        assert_eq!(r.cur, r.stages.len(), "rank {p} hung in the lockstep drive");
    }
    ranks.into_iter().map(|r| r.logs.into_iter().flatten().collect()).collect()
}

/// Eviction *during* the collective: the simulator's evicted-barrier run
/// must emit exactly the schedule the engines produce under a direct
/// lockstep drive — covering a core victim, a surplus victim, and a
/// victim whose surplus partner survives (the partner is released by the
/// fold, not by a message).
#[test]
fn evicted_fold_trace_identical_engine_vs_simnet() {
    for (n, victim) in [(4usize, 2usize), (5, 4), (6, 1), (8, 0)] {
        let sim = armci_repro::armci_simnet::protocols::sync::simulate_combined_barrier_evicted_logged(
            n,
            victim,
            armci_repro::armci_simnet::NetModel::myrinet_2000(),
        );
        let drive = lockstep_evicted_drive(n, victim);
        assert_eq!(sim.len(), n);
        for p in 0..n {
            assert_eq!(
                drive[p], sim[p],
                "n={n} victim={victim} rank={p}: lockstep and simulator evicted schedules diverged"
            );
        }
        assert!(sim[victim].iter().all(|r| r.stage == 0), "victim must never reach the barrier stage");
        for p in (0..n).filter(|&p| p != victim) {
            assert!(sim[p].iter().any(|r| r.stage == 1), "n={n} rank={p}: survivor never ran the barrier stage");
        }
    }
}

/// The fold keeps survivor schedules *identical to a healthy run*: an
/// evicted partner's slots are vacuously satisfied but the survivor's
/// own sends (including those addressed to the dead rank, dropped at the
/// transport) are unchanged — the property that makes degraded-mode
/// traces deterministic and comparable at all.
#[test]
fn fold_keeps_survivor_schedules_identical_to_healthy_run() {
    let (n, victim) = (8usize, 3usize);
    let healthy = simnet_logs(n);
    let evicted = armci_repro::armci_simnet::protocols::sync::simulate_combined_barrier_evicted_logged(
        n,
        victim,
        armci_repro::armci_simnet::NetModel::myrinet_2000(),
    );
    for p in (0..n).filter(|&p| p != victim) {
        assert_eq!(evicted[p], healthy[p], "rank {p}: fold perturbed a survivor's schedule");
    }
    // The victim's trace is the healthy allreduce prefix.
    assert_eq!(evicted[victim], healthy[victim][..evicted[victim].len()].to_vec());
    assert!(evicted[victim].len() < healthy[victim].len());
}

// ---- Hierarchical conformance -------------------------------------------

/// Per-rank (domains, hier log) from an SMP cluster with hierarchical
/// collectives on, via the emulator or netfab loopback.
fn hier_logs(nodes: u32, ppn: u32, net: bool) -> Vec<(Vec<Vec<usize>>, Vec<HierRecord>)> {
    let cfg = ArmciCfg { nodes, procs_per_node: ppn, latency: LatencyModel::zero(), ..Default::default() }
        .with_hier_collectives(true);
    let body = |a: &mut Armci| {
        let members: Vec<usize> = (0..a.nprocs()).collect();
        let g = a.group(&members);
        let domains = g.domains().expect("hier_collectives on").to_vec();
        a.barrier_group(&g);
        let log = a.take_hier_log();
        a.barrier();
        (domains, log)
    };
    if net {
        armci_repro::armci_core::run_cluster_net_loopback(cfg, body)
    } else {
        armci_repro::armci_core::run_cluster(cfg, body)
    }
}

/// The hierarchical barrier's schedule — counter legs and leader
/// exchange alike — is identical whether the engine is driven by the
/// emulator runtime or by the simulator replaying the same domain
/// partition; leaders send exactly `log2(domains)` exchange messages.
#[test]
fn hier_barrier_trace_identical_emulator_vs_simnet() {
    for (nodes, ppn) in [(2u32, 2u32), (4, 2), (4, 3)] {
        let per_rank = hier_logs(nodes, ppn, false);
        let domains = per_rank[0].0.clone();
        assert_eq!(domains.len(), nodes as usize, "domains are the node partition");
        let (_, sim) = armci_repro::armci_simnet::protocols::sync::simulate_hier_barrier_logged(
            &domains,
            armci_repro::armci_simnet::NetModel::myrinet_2000(),
        );
        let rounds = (nodes as usize).ilog2() as usize;
        for (rank, (doms, log)) in per_rank.iter().enumerate() {
            assert_eq!(doms, &domains, "rank {rank}: divergent domain partition");
            assert_eq!(log, &sim[rank], "nodes={nodes} ppn={ppn} rank={rank}: hier engines diverged");
            let xchg = log.iter().filter(|r| matches!(r.msg, HierMsg::Xchg(_))).count();
            let is_leader = domains.iter().any(|d| d[0] == rank);
            if is_leader {
                assert_eq!(xchg, rounds, "leader exchange rounds must be log2(nodes)");
            } else {
                assert_eq!(xchg, 0, "non-leaders never exchange");
            }
        }
    }
}

#[test]
fn hier_barrier_trace_identical_netfab_vs_simnet() {
    let per_rank = hier_logs(2, 2, true);
    let domains = per_rank[0].0.clone();
    let (_, sim) = armci_repro::armci_simnet::protocols::sync::simulate_hier_barrier_logged(
        &domains,
        armci_repro::armci_simnet::NetModel::myrinet_2000(),
    );
    for (rank, (doms, log)) in per_rank.iter().enumerate() {
        assert_eq!(doms, &domains);
        assert_eq!(log, &sim[rank], "rank={rank}: netfab and simulator hier engines diverged");
    }
}
