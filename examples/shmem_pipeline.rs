//! A SHMEM-style software pipeline over the symmetric heap — written
//! against `armci-shmem`, the GPSHMEM-like facade the paper's intro says
//! ARMCI exists to support.
//!
//! Stage `k` (PE `k`) receives batches in its inbox, applies its
//! transform, forwards to PE `k+1`, and signals with a flag put — the
//! classic `shmem_put` + `shmem_fence` + flag + `shmem_wait_until`
//! producer/consumer idiom. The last PE checks the fully transformed
//! batches.
//!
//! Run with:
//! ```text
//! cargo run --release --example shmem_pipeline
//! ```

use armci_repro::armci_core::{run_cluster, ArmciCfg};
use armci_repro::armci_shmem::Shmem;
use armci_repro::prelude::LatencyModel;

const BATCHES: u64 = 50;
const BATCH_LEN: usize = 8;

fn main() {
    let pes = 4u32;
    let cfg = ArmciCfg::flat(pes, LatencyModel::myrinet_like());
    let results = run_cluster(cfg, |armci| {
        let mut shm = Shmem::init(armci, 4096);
        let inbox = shm.malloc_u64(armci, BATCH_LEN).expect("heap");
        let flag = shm.malloc_u64(armci, 1).expect("heap"); // batch seq number
        let ack = shm.malloc_u64(armci, 1).expect("heap"); // consumer: "inbox free"
        shm.barrier_all(armci);

        let me = shm.my_pe(armci);
        let n = shm.n_pes(armci);
        let mut checked = 0u64;

        for batch in 1..=BATCHES {
            let data: Vec<u64> = if me == 0 {
                // Stage 0 produces.
                (0..BATCH_LEN as u64).map(|i| batch * 1000 + i).collect()
            } else {
                // Wait for the previous stage's signal, then read my inbox.
                shm.wait_until_eq(armci, flag, batch);
                shm.get_u64(armci, inbox, me, BATCH_LEN)
            };
            // Transform: every stage adds its rank+1 to each element.
            let out: Vec<u64> = data.iter().map(|v| v + me as u64 + 1).collect();
            if me + 1 < n {
                // Backpressure: wait until the consumer acked the
                // previous batch (it raises *our* ack flag).
                shm.wait_until_eq(armci, ack, batch - 1);
                // Forward data, fence, then raise the flag (data-before-
                // flag is exactly what shmem_fence is for).
                shm.put_u64(armci, inbox, me + 1, &out);
                shm.fence(armci, me + 1);
                shm.put_u64(armci, flag, me + 1, &[batch]);
            }
            if me > 0 {
                // Free our inbox for the next batch.
                shm.put_u64(armci, ack, me - 1, &[batch]);
            }
            if me + 1 == n {
                // Last stage verifies: batch*1000 + i + sum(1..=n-1 stages).
                let stage_sum: u64 = (1..=n as u64 - 1).sum();
                for (i, &v) in out.iter().enumerate() {
                    assert_eq!(v, batch * 1000 + i as u64 + stage_sum + n as u64, "pipeline corrupted");
                }
                checked += 1;
            }
        }
        shm.barrier_all(armci);
        checked
    });

    let last = *results.last().unwrap();
    assert_eq!(last, BATCHES);
    println!("shmem pipeline: {BATCHES} batches through {pes} stages — all verified");
}
