//! A lock-protected distributed work queue — dynamic load balancing in
//! the style of Global Arrays applications (e.g. NWChem task pools),
//! exercising the paper's MCS software queuing lock under real
//! contention.
//!
//! A task pool lives at process 0: a head index plus a results area.
//! Workers repeatedly take the lock, pop a chunk of tasks, release, and
//! process the chunk (summing squares). The mutual-exclusion and progress
//! properties of the lock are verified by checking the exact final sum.
//!
//! Run with:
//! ```text
//! cargo run --release --example work_queue
//! ```

use std::time::Instant;

use armci_repro::prelude::*;

const TASKS: u64 = 4000;
const CHUNK: u64 = 64;

fn run_with(algo: LockAlgo) -> (u64, f64) {
    let cfg = ArmciCfg::flat(4, LatencyModel::myrinet_like()).with_lock_algo(algo);
    let out = run_cluster(cfg, |armci| {
        // Pool layout at proc 0: [head, grand_total]
        let seg = armci.malloc(16);
        let head = GlobalAddr::new(ProcId(0), seg, 0);
        let total = GlobalAddr::new(ProcId(0), seg, 8);
        let lock = LockId { owner: ProcId(0), idx: 0 };
        armci.barrier();

        let t0 = Instant::now();
        let mut my_sum = 0u64;
        let mut my_tasks = 0u64;
        loop {
            // Critical section: pop a chunk [lo, hi) off the shared head.
            armci.lock(lock);
            let mut buf = [0u8; 8];
            armci.get(head, &mut buf);
            let lo = u64::from_le_bytes(buf);
            let hi = (lo + CHUNK).min(TASKS);
            if hi > lo {
                armci.put(head, &hi.to_le_bytes());
                armci.fence(ProcId(0));
            }
            armci.unlock(lock);
            if hi == lo {
                break; // pool drained
            }
            // Process outside the lock.
            for t in lo..hi {
                my_sum += t * t;
                my_tasks += 1;
            }
        }
        // Publish per-worker partial sums with an atomic accumulate.
        armci.fetch_add_u64(total, my_sum);
        armci.barrier();

        let mut buf = [0u8; 8];
        armci.get(total, &mut buf);
        let grand = u64::from_le_bytes(buf);
        (grand, my_tasks, t0.elapsed().as_secs_f64() * 1e6)
    });

    let expect: u64 = (0..TASKS).map(|t| t * t).sum();
    let mut tasks_done = 0;
    let mut worst_us = 0.0f64;
    for &(grand, my_tasks, us) in &out {
        assert_eq!(grand, expect, "lost or duplicated tasks under {algo:?}");
        tasks_done += my_tasks;
        worst_us = worst_us.max(us);
    }
    assert_eq!(tasks_done, TASKS, "every task processed exactly once under {algo:?}");
    (tasks_done, worst_us)
}

fn main() {
    println!("distributed work queue: {TASKS} tasks, chunks of {CHUNK}, 4 workers");
    for algo in [LockAlgo::Hybrid, LockAlgo::Mcs] {
        let (done, us) = run_with(algo);
        println!("  {algo:?}: {done} tasks, makespan {us:9.0} us — verified");
    }
    println!("work queue OK under both lock algorithms");
}
