//! The stencil again — but with `armci-ga`'s ghost-cell arrays instead of
//! hand-rolled halo exchange (compare `examples/stencil.rs`, which does
//! the same computation with raw puts; this version is a third the code).
//!
//! `GhostArray::update` refreshes the halo ring with one-sided gets and a
//! combined barrier; `flush` publishes the interior back. The second half
//! of the run switches to the notified-RMA path (`SyncAlg::Notify` for
//! this pattern): `plan_update` builds the push schedule once, and each
//! `update_with_plan` step then sends only the batched boundary rows —
//! zero synchronization messages — while producing the same answer.
//!
//! Run with:
//! ```text
//! cargo run --release --example ghost_stencil
//! ```

use armci_repro::armci_ga::GhostArray;
use armci_repro::prelude::*;

const N: usize = 32;
const ITERS: usize = 20;

fn reference() -> Vec<f64> {
    let mut cur = vec![0.0f64; N * N];
    cur[..N].fill(100.0); // hot top edge
    let mut next = cur.clone();
    for _ in 0..ITERS {
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                next[i * N + j] =
                    0.25 * (cur[(i - 1) * N + j] + cur[(i + 1) * N + j] + cur[i * N + j - 1] + cur[i * N + j + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// One Jacobi sweep over the interior, reading through the ghost ring;
/// global boundary rows/columns are held fixed.
fn jacobi_sweep(g: &GhostArray) -> Vec<f64> {
    let own = g.interior();
    let mut sweep = Vec::with_capacity(own.len());
    for r in own.row_lo..own.row_hi {
        for c in own.col_lo..own.col_hi {
            if r == 0 || r == N - 1 || c == 0 || c == N - 1 {
                sweep.push(g.at(r, c)); // fixed boundary
            } else {
                sweep.push(0.25 * (g.at(r - 1, c) + g.at(r + 1, c) + g.at(r, c - 1) + g.at(r, c + 1)));
            }
        }
    }
    sweep
}

fn main() {
    let cfg = ArmciCfg::flat(4, LatencyModel::myrinet_like());
    let out = armci_repro::armci_core::run_cluster(cfg, |armci| {
        let ga = GlobalArray::create(armci, N, N);
        // Initialize: hot top edge, zero elsewhere (owners write their rows).
        let own = ga.owned_patch(armci.rank());
        let init: Vec<f64> = (own.row_lo..own.row_hi)
            .flat_map(|i| (own.col_lo..own.col_hi).map(move |_| if i == 0 { 100.0 } else { 0.0 }))
            .collect();
        ga.put(armci, own, &init);
        let mut g = GhostArray::new(armci, ga, 1);

        // First half: pull-based updates (one-sided gets + GA_Sync).
        for _ in 0..ITERS / 2 {
            let sweep = jacobi_sweep(&g);
            let own = g.interior();
            let mut k = 0;
            for r in own.row_lo..own.row_hi {
                for c in own.col_lo..own.col_hi {
                    g.set(r, c, sweep[k]);
                    k += 1;
                }
            }
            g.flush(armci); // publish interior
            g.update(armci); // refresh ghosts
        }
        // Second half: the notified push exchange. The plan is built
        // once (collective); each step then publishes the interior with
        // a purely local put and completes on notification counts —
        // zero synchronization messages on the wire.
        let mut plan = g.plan_update(armci, 0);
        let before = armci.stats().wire_msgs;
        for _ in ITERS / 2..ITERS {
            let sweep = jacobi_sweep(&g);
            let own = g.interior();
            g.global().put(armci, own, &sweep); // we own this patch: local store
            g.update_with_plan(armci, &mut plan);
        }
        let notify_wire = armci.stats().wire_msgs - before;
        // Return my interior for stitching.
        let own = g.interior();
        let vals: Vec<f64> = (own.row_lo..own.row_hi)
            .flat_map(|r| (own.col_lo..own.col_hi).map(|c| g.at(r, c)).collect::<Vec<_>>())
            .collect();
        (own, vals, notify_wire)
    });

    let reference = reference();
    let mut max_err = 0.0f64;
    let mut total_notify_wire = 0;
    for (own, vals, notify_wire) in out {
        total_notify_wire += notify_wire;
        let mut k = 0;
        for r in own.row_lo..own.row_hi {
            for c in own.col_lo..own.col_hi {
                max_err = max_err.max((vals[k] - reference[r * N + c]).abs());
                k += 1;
            }
        }
    }
    println!("ghost-cell stencil {N}x{N}, {ITERS} iters: max |err| vs serial reference = {max_err:.3e}");
    println!(
        "notified second half: {total_notify_wire} wire messages across {} planned exchanges (data batches only)",
        ITERS - ITERS / 2
    );
    assert!(max_err < 1e-12);
    println!("ghost stencil OK");
}
