//! The stencil again — but with `armci-ga`'s ghost-cell arrays instead of
//! hand-rolled halo exchange (compare `examples/stencil.rs`, which does
//! the same computation with raw puts; this version is a third the code).
//!
//! `GhostArray::update` refreshes the halo ring with one-sided gets and a
//! combined barrier; `flush` publishes the interior back.
//!
//! Run with:
//! ```text
//! cargo run --release --example ghost_stencil
//! ```

use armci_repro::armci_ga::GhostArray;
use armci_repro::prelude::*;

const N: usize = 32;
const ITERS: usize = 20;

fn reference() -> Vec<f64> {
    let mut cur = vec![0.0f64; N * N];
    cur[..N].fill(100.0); // hot top edge
    let mut next = cur.clone();
    for _ in 0..ITERS {
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                next[i * N + j] =
                    0.25 * (cur[(i - 1) * N + j] + cur[(i + 1) * N + j] + cur[i * N + j - 1] + cur[i * N + j + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn main() {
    let cfg = ArmciCfg::flat(4, LatencyModel::myrinet_like());
    let out = armci_repro::armci_core::run_cluster(cfg, |armci| {
        let ga = GlobalArray::create(armci, N, N);
        // Initialize: hot top edge, zero elsewhere (owners write their rows).
        let own = ga.owned_patch(armci.rank());
        let init: Vec<f64> = (own.row_lo..own.row_hi)
            .flat_map(|i| (own.col_lo..own.col_hi).map(move |_| if i == 0 { 100.0 } else { 0.0 }))
            .collect();
        ga.put(armci, own, &init);
        let mut g = GhostArray::new(armci, ga, 1);

        for _ in 0..ITERS {
            let own = g.interior();
            let mut sweep = Vec::with_capacity(own.len());
            for r in own.row_lo..own.row_hi {
                for c in own.col_lo..own.col_hi {
                    if r == 0 || r == N - 1 || c == 0 || c == N - 1 {
                        sweep.push(g.at(r, c)); // fixed boundary
                    } else {
                        sweep.push(0.25 * (g.at(r - 1, c) + g.at(r + 1, c) + g.at(r, c - 1) + g.at(r, c + 1)));
                    }
                }
            }
            let mut k = 0;
            for r in own.row_lo..own.row_hi {
                for c in own.col_lo..own.col_hi {
                    g.set(r, c, sweep[k]);
                    k += 1;
                }
            }
            g.flush(armci); // publish interior
            g.update(armci); // refresh ghosts
        }
        // Return my interior for stitching.
        let own = g.interior();
        let vals: Vec<f64> = (own.row_lo..own.row_hi)
            .flat_map(|r| (own.col_lo..own.col_hi).map(|c| g.at(r, c)).collect::<Vec<_>>())
            .collect();
        (own, vals)
    });

    let reference = reference();
    let mut max_err = 0.0f64;
    for (own, vals) in out {
        let mut k = 0;
        for r in own.row_lo..own.row_hi {
            for c in own.col_lo..own.col_hi {
                max_err = max_err.max((vals[k] - reference[r * N + c]).abs());
                k += 1;
            }
        }
    }
    println!("ghost-cell stencil {N}x{N}, {ITERS} iters: max |err| vs serial reference = {max_err:.3e}");
    assert!(max_err < 1e-12);
    println!("ghost stencil OK");
}
