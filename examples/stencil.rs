//! Jacobi 5-point stencil with one-sided halo exchange — the classic
//! scientific-computing pattern ARMCI's intro motivates: each iteration,
//! processes push their boundary rows into neighbours' halo slots with
//! non-blocking puts, then one `ARMCI_Barrier()` both completes the puts
//! everywhere and aligns the iteration — exactly the fused use the
//! paper's combined operation was designed for.
//!
//! The domain is a 1-D strip decomposition of an `N x N` grid. After
//! `ITERS` sweeps we compare against a single-process reference solve.
//!
//! Run with:
//! ```text
//! cargo run --release --example stencil
//! ```

use armci_repro::prelude::*;

const N: usize = 48; // grid (including fixed boundary)
const ITERS: usize = 30;
const PROCS: u32 = 4;

/// Single-process reference: plain Jacobi on the full grid.
fn reference() -> Vec<f64> {
    let mut cur = init_grid();
    let mut next = cur.clone();
    for _ in 0..ITERS {
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                next[i * N + j] =
                    0.25 * (cur[(i - 1) * N + j] + cur[(i + 1) * N + j] + cur[i * N + j - 1] + cur[i * N + j + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Boundary = 100.0 on the top edge, 0 elsewhere.
fn init_grid() -> Vec<f64> {
    let mut g = vec![0.0f64; N * N];
    g[..N].fill(100.0);
    g
}

fn main() {
    let rows_per = (N - 2).div_ceil(PROCS as usize);
    let cfg = ArmciCfg::flat(PROCS, LatencyModel::myrinet_like());
    let out = run_cluster(cfg, move |armci| {
        let me = armci.rank();
        let n = armci.nprocs();
        // My interior rows [lo, hi) of the global grid.
        let lo = 1 + me * rows_per;
        let hi = (lo + rows_per).min(N - 1);
        let nrows = hi - lo;

        // Local storage: interior rows plus a halo row above and below,
        // two buffers (current/next), in one registered segment:
        //   [cur: (nrows+2) rows][next: (nrows+2) rows]
        let row_bytes = N * 8;
        let buf_rows = nrows + 2;
        let seg = armci.malloc(2 * buf_rows * row_bytes);
        let local = armci.local_segment(seg);

        // Initialize from the global boundary condition.
        let full = init_grid();
        for (r, gi) in (lo - 1..hi + 1).enumerate() {
            let row: Vec<u8> = full[gi * N..(gi + 1) * N].iter().flat_map(|v| v.to_le_bytes()).collect();
            local.write_bytes(r * row_bytes, &row);
            local.write_bytes((buf_rows + r) * row_bytes, &row);
        }
        armci.barrier();

        let read_row = |buf: usize, r: usize| -> Vec<f64> {
            let mut bytes = vec![0u8; row_bytes];
            local.read_bytes((buf * buf_rows + r) * row_bytes, &mut bytes);
            bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
        };
        let write_row = |buf: usize, r: usize, row: &[f64]| {
            let bytes: Vec<u8> = row.iter().flat_map(|v| v.to_le_bytes()).collect();
            local.write_bytes((buf * buf_rows + r) * row_bytes, &bytes);
        };

        let mut cur = 0usize; // which buffer holds the current sweep
        for _ in 0..ITERS {
            let nxt = 1 - cur;
            // Sweep my interior rows from `cur` into `nxt`.
            for r in 1..=nrows {
                let above = read_row(cur, r - 1);
                let here = read_row(cur, r);
                let below = read_row(cur, r + 1);
                let mut out_row = here.clone();
                for j in 1..N - 1 {
                    out_row[j] = 0.25 * (above[j] + below[j] + here[j - 1] + here[j + 1]);
                }
                write_row(nxt, r, &out_row);
            }
            // Halo exchange: push my first/last interior rows of `nxt`
            // into my neighbours' `nxt` halo slots, one-sidedly.
            let halo_off = |r: usize| (nxt * buf_rows + r) * row_bytes;
            if me > 0 {
                let row: Vec<u8> = read_row(nxt, 1).iter().flat_map(|v| v.to_le_bytes()).collect();
                // My row `lo` is neighbour's halo row (their r = nrows+1).
                let their_nrows = ((1 + (me - 1) * rows_per + rows_per).min(N - 1)) - (1 + (me - 1) * rows_per);
                armci.put(GlobalAddr::new(ProcId(me as u32 - 1), seg, halo_off(their_nrows + 1)), &row);
            }
            if me < n - 1 {
                let row: Vec<u8> = read_row(nxt, nrows).iter().flat_map(|v| v.to_le_bytes()).collect();
                armci.put(GlobalAddr::new(ProcId(me as u32 + 1), seg, halo_off(0)), &row);
            }
            // One combined fence+barrier completes the halos everywhere
            // and aligns the next iteration.
            armci.barrier();
            cur = nxt;
        }

        // Return my interior block for verification.
        let mut mine = Vec::with_capacity(nrows * N);
        for r in 1..=nrows {
            mine.extend(read_row(cur, r));
        }
        (lo, hi, mine)
    });

    // Stitch and compare against the reference.
    let reference = reference();
    let mut max_err = 0.0f64;
    for (lo, hi, mine) in out {
        for (r, gi) in (lo..hi).enumerate() {
            for j in 0..N {
                let err = (mine[r * N + j] - reference[gi * N + j]).abs();
                max_err = max_err.max(err);
            }
        }
    }
    println!("jacobi {N}x{N}, {ITERS} iters over {PROCS} procs: max |err| vs reference = {max_err:.3e}");
    assert!(max_err < 1e-12, "distributed stencil diverged from reference");
    println!("stencil OK");
}
