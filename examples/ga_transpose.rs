//! Distributed matrix transpose over Global Arrays — the kind of
//! array-shuffling workload `GA_Sync()` sits in the middle of, and a
//! head-to-head of the paper's two sync algorithms on real code.
//!
//! Every process reads its block of `A`, transposes it, and writes it
//! one-sidedly into the mirrored position of `B`; a `GA_Sync()` then makes
//! the result globally visible. The put phase targets remote blocks, so
//! the sync must fence with every server — the paper's worst case for the
//! original algorithm.
//!
//! Run with:
//! ```text
//! cargo run --release --example ga_transpose
//! ```

use std::time::Instant;

use armci_repro::prelude::*;

const N: usize = 64; // global matrix is N x N
const ROUNDS: usize = 5;

fn main() {
    let cfg = ArmciCfg::flat(4, LatencyModel::myrinet_like());
    let results = run_cluster(cfg, |armci| {
        let a = GlobalArray::create(armci, N, N);
        let b = GlobalArray::create(armci, N, N);

        // Fill A with A[i][j] = i * N + j, collectively.
        let own = a.owned_patch(armci.rank());
        let data: Vec<f64> =
            (own.row_lo..own.row_hi).flat_map(|i| (own.col_lo..own.col_hi).map(move |j| (i * N + j) as f64)).collect();
        a.put(armci, own, &data);
        a.sync_world(armci, SyncAlg::CombinedBarrier);

        let mut timings = Vec::new();
        for alg in [SyncAlg::Baseline, SyncAlg::CombinedBarrier] {
            let mut total_ns = 0u128;
            for _ in 0..ROUNDS {
                // Read my block of A, transpose it, write into B^T's spot.
                let block = a.get(armci, own);
                let mut tblock = vec![0.0f64; block.len()];
                for i in 0..own.rows() {
                    for j in 0..own.cols() {
                        tblock[j * own.rows() + i] = block[i * own.cols() + j];
                    }
                }
                let dst = Patch::new(own.col_lo, own.col_hi, own.row_lo, own.row_hi);
                b.put(armci, dst, &tblock);

                Group::world(armci.nprocs()).barrier_binary_exchange(armci); // align, then time the sync
                let t0 = Instant::now();
                b.sync_world(armci, alg);
                total_ns += t0.elapsed().as_nanos();
            }
            timings.push(total_ns as f64 / ROUNDS as f64 / 1000.0); // us
        }

        // Verify B == A^T from every rank's perspective.
        let checks = [(3usize, 17usize), (0, 0), (N - 1, 5), (31, 62)];
        for &(i, j) in &checks {
            let v = b.get(armci, Patch::new(i, i + 1, j, j + 1))[0];
            assert_eq!(v, (j * N + i) as f64, "B[{i}][{j}] must equal A[{j}][{i}]");
        }
        armci.barrier();
        (timings[0], timings[1])
    });

    let (base, new) = results[0];
    println!("transpose {N}x{N} over {} procs (mean GA_Sync time, {ROUNDS} rounds):", results.len());
    println!("  current (AllFence + MPI_Barrier): {base:8.1} us");
    println!("  new     (ARMCI_Barrier)         : {new:8.1} us");
    println!("  factor of improvement           : {:8.2}x", base / new);
    println!();
    println!("note: a 2-D transpose touches at most ONE remote block per process,");
    println!("so this workload sits near the crossover the paper notes in 3.1.2 —");
    println!("with fewer than log2(N)/2 touched servers the original AllFence is");
    println!("competitive. Compare examples/quickstart.rs (all-to-all puts), where");
    println!("the combined barrier wins by the full margin of Figure 7.");
    println!("transpose verified on all ranks — OK");
}
