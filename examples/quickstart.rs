//! Quickstart: one-sided communication and the paper's two optimized
//! synchronization operations on an emulated 4-node cluster.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use armci_repro::prelude::*;

fn main() {
    // 4 single-process nodes with Myrinet-like injected latency.
    let cfg = ArmciCfg::flat(4, LatencyModel::myrinet_like());
    let results = run_cluster(cfg, |armci| {
        let me = armci.rank();
        let n = armci.nprocs();

        // --- Collective allocation (ARMCI_Malloc) --------------------
        let seg = armci.malloc(8 * n);

        // --- One-sided puts ------------------------------------------
        // Everyone deposits its rank into every peer's segment; puts to
        // remote nodes are non-blocking and complete asynchronously.
        for peer in 0..n {
            let slot = GlobalAddr::new(ProcId(peer as u32), seg, 8 * me);
            armci.put_u64(slot, 100 + me as u64);
        }

        // --- The paper's combined fence + barrier --------------------
        // One call: all puts globally complete AND all processes aligned,
        // in 2*log2(N) message latencies instead of 2(N-1)+log2(N).
        armci.barrier();

        // Every slot of my segment is now filled.
        let mine = armci.local_segment(seg);
        let got: Vec<u64> = (0..n).map(|r| mine.read_u64(8 * r)).collect();
        assert_eq!(got, (0..n as u64).map(|r| 100 + r).collect::<Vec<_>>());

        // --- Distributed locking (MCS software queuing lock) ---------
        // A shared counter at process 0, protected by a lock at process 0.
        let lock = LockId { owner: ProcId(0), idx: 0 };
        let counter = GlobalAddr::new(ProcId(0), seg, 0);
        for _ in 0..3 {
            armci.lock(lock);
            // Deliberately non-atomic RMW under the lock.
            let mut buf = [0u8; 8];
            armci.get(counter, &mut buf);
            armci.put(counter, &(u64::from_le_bytes(buf) + 1).to_le_bytes());
            armci.fence(ProcId(0));
            armci.unlock(lock);
        }
        armci.barrier();

        let mut buf = [0u8; 8];
        armci.get(counter, &mut buf);
        let total = u64::from_le_bytes(buf);

        if me == 0 {
            println!("counter after {} procs x 3 locked increments: {}", n, total);
            println!("stats for rank 0: {:?}", armci.stats());
        }
        total
    });

    // 100 (rank 0's deposit) overwritten by increments: 100 + 12.
    assert!(results.iter().all(|&t| t == 112));
    println!("quickstart OK: all {} ranks agree", results.len());
}
