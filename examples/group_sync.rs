//! Processor groups: overlapping row/column communicators on a process
//! grid, group-scoped synchronization, and the topology-hierarchical
//! barrier.
//!
//! An emulated 4-node x 2-process cluster is viewed as a 2x4 process
//! grid. Every process belongs to two overlapping groups — its row and
//! its column — and synchronizes each independently: puts to row peers
//! are completed by a *row* barrier (the column, and the rest of the
//! machine, is never touched), then a column-group allreduce combines
//! per-column results. With `hier_collectives` on, each group barrier
//! synchronizes co-located members through a shared-memory counter and
//! sends only `log2(domains)` inter-node exchange messages per leader.
//!
//! Run with:
//! ```text
//! cargo run --example group_sync
//! ```

use armci_repro::prelude::*;

const ROWS: usize = 2;
const COLS: usize = 4;

fn main() {
    // 4 dual-process nodes; groups exploit the node locality.
    let cfg = ArmciCfg { nodes: 4, procs_per_node: 2, latency: LatencyModel::myrinet_like(), ..Default::default() }
        .with_hier_collectives(true);
    run_cluster(cfg, |armci| {
        let me = armci.rank();
        let (row, col) = (me / COLS, me % COLS);
        let seg = armci.malloc(8 * COLS);
        armci.barrier();

        // --- Row group: put to every row peer, sync the row only -----
        let row_members: Vec<usize> = (0..COLS).map(|c| row * COLS + c).collect();
        let rg = armci.group(&row_members);
        for &peer in &row_members {
            armci.put_u64(GlobalAddr::new(ProcId(peer as u32), seg, 8 * col), 10 * row as u64 + col as u64);
        }
        // Completes row-directed puts + barriers the row: the other row
        // proceeds independently.
        armci.barrier_group(&rg);
        let mine = armci.local_segment(seg);
        let row_sum: u64 = (0..COLS).map(|c| mine.read_u64(8 * c)).sum();

        // The hierarchical trace: row members on the same node checked in
        // through a shared counter; only per-node leaders exchanged.
        let xchg = armci.take_hier_log().iter().filter(|r| matches!(r.msg, armci_proto::HierMsg::Xchg(_))).count();

        // --- Column group (overlaps every row group) ------------------
        let col_members: Vec<usize> = (0..ROWS).map(|r| r * COLS + col).collect();
        let cg = armci.group(&col_members);
        let mut v = [row_sum];
        cg.msg().allreduce_sum_u64(armci, &mut v);
        // Row r's sum is sum_c(10r + c) = 10r*COLS + 0+..+(COLS-1).
        let expect: u64 = (0..ROWS as u64).map(|r| 10 * r * COLS as u64 + (COLS * (COLS - 1) / 2) as u64).sum();
        assert_eq!(v[0], expect, "column totals must agree across the grid");

        println!("rank {me} (row {row}, col {col}): row_sum={row_sum} col_total={} xchg_msgs={xchg}", v[0]);
        armci.barrier();
    });
}
