//! Distributed matrix multiply in the Global Arrays style (SUMMA-like
//! block outer products) — the showcase workload for one-sided
//! communication: every process simply *gets* the `A` and `B` panels it
//! needs, with no matching sends, and one `GA_Sync()` per panel step.
//!
//! `C = A · B` on an `N x N` grid of `f64`, block-distributed over a
//! `pr x pc` process grid; verified against a serial reference multiply.
//!
//! Run with:
//! ```text
//! cargo run --release --example summa_matmul
//! ```

use armci_repro::prelude::*;

const N: usize = 48;

fn main() {
    let cfg = ArmciCfg::flat(4, LatencyModel::myrinet_like());
    let results = armci_repro::armci_core::run_cluster(cfg, |armci| {
        let a = GlobalArray::create(armci, N, N);
        let b = GlobalArray::create(armci, N, N);
        let c = GlobalArray::create(armci, N, N);

        // Fill A and B with deterministic values, each rank its own block.
        let fill = |ga: &GlobalArray, armci: &mut Armci, f: &dyn Fn(usize, usize) -> f64| {
            let own = ga.owned_patch(armci.rank());
            let data: Vec<f64> =
                (own.row_lo..own.row_hi).flat_map(|i| (own.col_lo..own.col_hi).map(move |j| f(i, j))).collect();
            ga.put(armci, own, &data);
        };
        fill(&a, armci, &|i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        fill(&b, armci, &|i, j| ((i * 5 + j * 2) % 13) as f64 - 6.0);
        c.fill(armci, 0.0);
        a.sync_world(armci, SyncAlg::CombinedBarrier);

        // SUMMA over the grid's inner dimension: my C block accumulates
        // A[my_rows, kband] x B[kband, my_cols] for every k-band.
        let own = c.owned_patch(armci.rank());
        let grid = a.distribution().grid;
        let band = a.distribution().block_cols; // k-band width
        let mut acc = vec![0.0f64; own.len()];
        for kb in 0..grid.pc {
            let k_lo = kb * band;
            let k_hi = ((kb + 1) * band).min(N);
            // One-sided panel fetches — no sends anywhere.
            let a_panel = a.get(armci, Patch::new(own.row_lo, own.row_hi, k_lo, k_hi));
            let b_panel = b.get(armci, Patch::new(k_lo, k_hi, own.col_lo, own.col_hi));
            let kw = k_hi - k_lo;
            for i in 0..own.rows() {
                for k in 0..kw {
                    let aik = a_panel[i * kw + k];
                    for j in 0..own.cols() {
                        acc[i * own.cols() + j] += aik * b_panel[k * own.cols() + j];
                    }
                }
            }
        }
        c.put(armci, own, &acc);
        c.sync_world(armci, SyncAlg::CombinedBarrier);

        // Spot-verify a row of C from every rank against a serial multiply.
        let serial = |i: usize, j: usize| -> f64 {
            (0..N)
                .map(|k| {
                    let av = ((i * 7 + k * 3) % 11) as f64 - 5.0;
                    let bv = ((k * 5 + j * 2) % 13) as f64 - 6.0;
                    av * bv
                })
                .sum()
        };
        let check_row = (armci.rank() * 11) % N;
        let got = c.get(armci, Patch::new(check_row, check_row + 1, 0, N));
        for (j, &v) in got.iter().enumerate() {
            assert_eq!(v, serial(check_row, j), "C[{check_row}][{j}] mismatch");
        }
        armci.barrier();
        true
    });
    assert!(results.into_iter().all(|ok| ok));
    println!("SUMMA matmul {N}x{N} over 4 processes — verified against serial reference");
}
