//! Lock-free task farming with `GA_Read_inc` (the NXTVAL pattern) —
//! the classic Global Arrays alternative to a lock-protected queue:
//! workers draw task indices from a shared atomic counter with a single
//! one-sided fetch-and-add, so there is no lock handoff at all.
//!
//! The farm evaluates a toy quadrature (∫₀¹ 4/(1+x²) dx = π) split into
//! many strips; each worker repeatedly draws the next strip index.
//! Compare with `examples/work_queue.rs`, which does the same dynamic
//! balancing through the paper's locks — the counter version is what GA
//! applications actually converged on, and it shows why fast one-sided
//! RMW operations matter as much as fast locks.
//!
//! Run with:
//! ```text
//! cargo run --release --example nxtval_farm
//! ```

use armci_repro::armci_ga::SharedCounters;
use armci_repro::prelude::*;

const STRIPS: i64 = 400;
/// Quadrature points per strip — enough compute per task that drawing
/// the next index (a ~2x100us round trip for remote workers) does not
/// dominate, so the farm balances instead of the counter-local worker
/// taking everything.
const POINTS_PER_STRIP: i64 = 200_000;

fn main() {
    let cfg = ArmciCfg::flat(4, LatencyModel::myrinet_like());
    let results = armci_repro::armci_core::run_cluster(cfg, |armci| {
        // One shared task counter plus one result accumulator per run.
        let counter = SharedCounters::create(armci, 1);
        let acc_seg = armci.malloc(8);
        let acc = GlobalAddr::new(ProcId(0), acc_seg, 0);
        armci.barrier();

        let h = 1.0 / STRIPS as f64;
        let mut partial = 0.0f64;
        let mut drawn = 0u64;
        loop {
            // NXTVAL: one one-sided fetch-and-add draws the next strip.
            let strip = counter.read_inc(armci, 0, 1);
            if strip >= STRIPS {
                break;
            }
            let sub_h = h / POINTS_PER_STRIP as f64;
            for k in 0..POINTS_PER_STRIP {
                let x = strip as f64 * h + (k as f64 + 0.5) * sub_h;
                partial += 4.0 / (1.0 + x * x) * sub_h;
            }
            drawn += 1;
        }
        // Publish the partial sum with an atomic accumulate.
        armci.acc_f64(acc, 1.0, &[partial]);
        armci.barrier();

        let mut buf = [0u8; 8];
        armci.get(acc, &mut buf);
        (f64::from_le_bytes(buf), drawn)
    });

    let (pi, _) = results[0];
    let total_drawn: u64 = results.iter().map(|&(_, d)| d).sum();
    println!("nxtval farm: {STRIPS} strips over {} workers", results.len());
    for (r, &(_, d)) in results.iter().enumerate() {
        println!("  worker {r}: drew {d} strips");
    }
    println!("  estimate of pi = {pi:.10} (err {:.2e})", (pi - std::f64::consts::PI).abs());
    assert_eq!(total_drawn, STRIPS as u64, "every strip processed exactly once");
    assert!(results.iter().all(|&(_, d)| d > 0), "dynamic balancing must feed every worker");
    assert!((pi - std::f64::consts::PI).abs() < 1e-6, "quadrature diverged");
    println!("nxtval farm OK — every strip drawn exactly once, no locks involved");
}
